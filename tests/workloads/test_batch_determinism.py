"""Cross-process determinism of the batch workload generators.

The module docs of :mod:`repro.workloads.batch` promise that specs are
pure functions of ``(seed, index)`` *across processes* -- the property
the service's fingerprint cache and the bench's warm-cache numbers
rest on.  These tests pin it for real: a separate interpreter with a
different ``PYTHONHASHSEED`` must produce byte-equal specs and equal
job fingerprints.
"""

import json
import os
import subprocess
import sys

from repro.service.jobs import ChaseJob, job_from_dict
from repro.workloads.batch import (mixed_batch_specs, query_batch_specs,
                                   spec_rng)

_SUBPROCESS_PROGRAM = """
import json, sys
from repro.workloads.batch import mixed_batch_specs, query_batch_specs
from repro.service.jobs import job_from_dict
specs = mixed_batch_specs(8, seed=13) + query_batch_specs(6, seed=13)
print(json.dumps({
    "specs": specs,
    "fingerprints": [job_from_dict(s, name=f"j{i}").fingerprint()
                     for i, s in enumerate(specs)],
}))
"""


def _generate_in_subprocess(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"),
                    env.get("PYTHONPATH")) if p)
    out = subprocess.run([sys.executable, "-c", _SUBPROCESS_PROGRAM],
                        capture_output=True, text=True, env=env,
                        check=True)
    return json.loads(out.stdout)


def test_fingerprints_pinned_across_processes_and_hash_seeds():
    specs = mixed_batch_specs(8, seed=13) + query_batch_specs(6, seed=13)
    local = [job_from_dict(s, name=f"j{i}").fingerprint()
             for i, s in enumerate(specs)]
    for hash_seed in ("0", "12345"):
        remote = _generate_in_subprocess(hash_seed)
        assert remote["specs"] == specs
        assert remote["fingerprints"] == local


def test_specs_are_pure_functions_of_seed_and_index():
    # Same (seed, index) => same spec, no matter the batch length.
    long = mixed_batch_specs(12, seed=4)
    short = mixed_batch_specs(5, seed=4)
    assert long[:5] == short
    # Different seeds diverge somewhere (not a constant generator).
    assert mixed_batch_specs(12, seed=5) != long


def test_spec_rng_is_stable_and_private_per_index():
    assert spec_rng(3, 0).random() == spec_rng(3, 0).random()
    assert spec_rng(3, 0).random() != spec_rng(3, 1).random()
    # Pin one concrete draw: a change to the seed derivation scheme
    # must be noticed (it silently invalidates every cached
    # fingerprint comparison in benches and docs).
    assert spec_rng(11, 2).randint(3, 8) == 7


def test_rendered_instance_text_reparses_to_equal_job():
    for spec in mixed_batch_specs(4, seed=1):
        job = ChaseJob.from_dict(spec)
        rerendered = ChaseJob.from_dict({
            **spec, "instance": spec["instance"]})
        assert rerendered.fingerprint() == job.fingerprint()
