"""CQ containment / equivalence, plain and under constraints."""

import pytest

from repro.cq.containment import contained_in, equivalent
from repro.lang.errors import NonTerminationBudget
from repro.lang.parser import parse_constraints, parse_query


class TestClassicalContainment:
    def test_subquery_contains_query(self):
        q_big = parse_query("q(x) <- E(x,y), E(y,x), S(x)")
        q_small = parse_query("q(x) <- E(x,y)")
        assert contained_in(q_big, q_small)
        assert not contained_in(q_small, q_big)

    def test_equivalence_by_redundancy(self):
        q1 = parse_query("q(x) <- E(x,y), E(x,z)")
        q2 = parse_query("q(x) <- E(x,y)")
        assert equivalent(q1, q2)

    def test_head_must_be_preserved(self):
        q1 = parse_query("q(x) <- E(x,y)")
        q2 = parse_query("q(y) <- E(x,y)")
        assert not contained_in(q1, q2)
        assert not contained_in(q2, q1)

    def test_constants_distinguish(self):
        q1 = parse_query("q(x) <- E('a', x)")
        q2 = parse_query("q(x) <- E(y, x)")
        assert contained_in(q1, q2)
        assert not contained_in(q2, q1)


class TestContainmentUnderConstraints:
    SIGMA = "E(x,y) -> E(y,x)"  # symmetry

    def test_symmetry_collapses_directions(self):
        sigma = parse_constraints(self.SIGMA)
        q1 = parse_query("q(x) <- E(x,y)")
        q2 = parse_query("q(x) <- E(y,x)")
        assert not equivalent(q1, q2)          # not classically
        assert equivalent(q1, q2, sigma)       # but under symmetry

    def test_transitivity_example(self):
        sigma = parse_constraints("E(x,y), E(y,z) -> E(x,z)")
        q_path = parse_query("q(x,z) <- E(x,y), E(y,z)")
        q_edge = parse_query("q(x,z) <- E(x,z)")
        # classically incomparable: a single edge is not a 2-path
        # (no midpoint), and a 2-path has no direct edge
        assert not contained_in(q_edge, q_path)
        assert not contained_in(q_path, q_edge)
        # under transitivity, every 2-path implies the direct edge
        assert contained_in(q_path, q_edge, sigma)
        # ... but an edge still yields no 2-path
        assert not contained_in(q_edge, q_path, sigma)

    def test_divergent_chase_raises(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        q = parse_query("q(x) <- S(x)")
        with pytest.raises(NonTerminationBudget):
            contained_in(q, q, sigma, max_steps=100)

    def test_cycle_limit_aborts_fast(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        q = parse_query("q(x) <- S(x)")
        with pytest.raises(NonTerminationBudget):
            contained_in(q, q, sigma, max_steps=100_000, cycle_limit=2)
