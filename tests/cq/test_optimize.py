"""The Section 4 SQO pipeline on the travel-agency scenario, plus
core minimization."""

import pytest

from repro.cq.containment import equivalent
from repro.cq.optimize import minimize_query, optimize, universal_plan
from repro.lang.errors import NonTerminationBudget
from repro.lang.parser import parse_constraints, parse_query
from repro.workloads.paper import (figure9, query_q1, query_q2,
                                   query_q2_double_prime,
                                   query_q2_expected_plan,
                                   query_q2_triple_prime)


class TestMinimizeQuery:
    def test_redundant_atom_folds_away(self):
        minimized = minimize_query(parse_query("q(x) <- E(x, y), E(x, z)"))
        assert len(minimized.body) == 1
        assert equivalent(minimized, parse_query("q(x) <- E(x, y)"))

    def test_head_variables_block_folding(self):
        assert len(minimize_query(
            parse_query("q(x, y) <- E(x, y), E(y, x)")).body) == 2

    def test_body_constants_stay_rigid(self):
        query = parse_query("q(x) <- E(x, 'a'), E(x, y)")
        minimized = minimize_query(query)
        # E(x, y) folds onto E(x, 'a'); the constant atom survives
        assert len(minimized.body) == 1
        assert minimized.body[0] == query.body[0]

    def test_body_nulls_stay_rigid(self):
        """Source-side nulls match themselves exactly in evaluation,
        so minimization must keep them rigid rather than fold them
        (regression: KeyError on the thaw map)."""
        query = parse_query("q(x) <- E(x, ?n7), E(x, y)")
        minimized = minimize_query(query)
        assert len(minimized.body) == 1
        assert minimized.body[0] == query.body[0]


class TestUniversalPlan:
    def test_q2_plan_is_q2_prime(self):
        plan = universal_plan(query_q2(), figure9(), cycle_limit=3)
        assert len(plan.body) == 6
        assert equivalent(plan, query_q2_expected_plan())
        body_relations = sorted(a.relation for a in plan.body)
        assert body_relations.count("hasAirport") == 2

    def test_q1_diverges(self):
        with pytest.raises(NonTerminationBudget):
            universal_plan(query_q1(), figure9(), cycle_limit=3)

    def test_plan_without_guard_uses_step_budget(self):
        with pytest.raises(NonTerminationBudget):
            universal_plan(query_q1(), figure9(), cycle_limit=None,
                           max_steps=200)

    def test_plan_preserves_equivalence(self):
        sigma = figure9()
        plan = universal_plan(query_q2(), sigma, cycle_limit=3)
        assert equivalent(plan, query_q2(), sigma, cycle_limit=3)


class TestOptimize:
    def test_q2_rewritings(self):
        """Reproduces q2'' (join elimination) and q2''' (join
        introduction) from Section 4."""
        result = optimize(query_q2(), figure9(), cycle_limit=3)
        minimal = result.minimal_rewritings()
        assert minimal, "no rewritings found"
        assert min(len(q.body) for q in minimal) == 3
        q2pp = query_q2_double_prime()
        assert any(equivalent(q, q2pp) for q in minimal)
        q2ppp = query_q2_triple_prime()
        assert any(equivalent(q, q2ppp) for q in result.rewritings)

    def test_all_rewritings_equivalent_to_original(self):
        sigma = figure9()
        result = optimize(query_q2(), sigma, cycle_limit=3)
        for rewriting in result.rewritings:
            assert equivalent(rewriting, query_q2(), sigma, cycle_limit=3)

    def test_rewritings_keep_head_variables(self):
        result = optimize(query_q2(), figure9(), cycle_limit=3)
        for rewriting in result.rewritings:
            assert query_q2().head_variables() <= rewriting.variables()

    def test_trivial_sigma_yields_core_like_minimization(self):
        q = parse_query("q(x) <- E(x,y), E(x,z)")
        result = optimize(q, [])
        assert any(len(r.body) == 1 for r in result.rewritings)

    def test_subquery_cap(self):
        result = optimize(query_q2(), figure9(), cycle_limit=3,
                          max_subquery_atoms=3)
        assert all(len(r.body) <= 3 for r in result.rewritings)
