"""Conjunctive query representation and evaluation."""

import pytest

from repro.cq.query import ConjunctiveQuery, unfreeze
from repro.lang.atoms import Atom
from repro.lang.errors import SchemaError
from repro.lang.parser import parse_instance, parse_query
from repro.lang.terms import Constant, Null, Variable

x, y = Variable("x"), Variable("y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestConstruction:
    def test_head_variables_must_occur_in_body(self):
        with pytest.raises(SchemaError):
            ConjunctiveQuery("q", (x,), (Atom("E", (y, y)),))

    def test_no_nulls_in_queries(self):
        with pytest.raises(SchemaError):
            ConjunctiveQuery("q", (Null(1),), (Atom("S", (x,)),))

    def test_boolean_query(self):
        q = ConjunctiveQuery("q", (), (Atom("S", (x,)),))
        assert q.is_boolean

    def test_variable_classification(self):
        q = parse_query("q(x) <- E(x,y), S(x)")
        assert q.head_variables() == {x}
        assert q.existential_variables() == {y}


class TestEvaluation:
    def test_simple_selection(self):
        q = parse_query("q(x) <- S(x)")
        inst = parse_instance("S(a). S(b). E(a,b)")
        assert q.evaluate(inst) == {(a,), (b,)}

    def test_join_evaluation(self):
        q = parse_query("q(x, z) <- E(x,y), E(y,z)")
        inst = parse_instance("E(a,b). E(b,c)")
        assert q.evaluate(inst) == {(a, c)}

    def test_constants_in_body(self):
        q = parse_query("q(y) <- E('a', y)")
        inst = parse_instance("E(a,b). E(b,c)")
        assert q.evaluate(inst) == {(b,)}

    def test_null_answers_dropped_by_default(self):
        q = parse_query("q(y) <- E('a', y)")
        inst = parse_instance("E(a, ?n1). E(a, b)")
        assert q.evaluate(inst) == {(b,)}
        assert q.evaluate(inst, constants_only=False) == {(b,), (Null(1),)}

    def test_holds_in(self):
        q = parse_query("q(x) <- E(x,x)")
        assert q.holds_in(parse_instance("E(a,a)"))
        assert not q.holds_in(parse_instance("E(a,b)"))


class TestFreezeUnfreeze:
    def test_freeze_produces_canonical_instance(self):
        q = parse_query("q(x) <- E(x,y), S(x)")
        frozen, mapping = q.freeze()
        assert len(frozen) == 2
        assert frozen.nulls() == set(mapping.values())
        assert set(mapping) == {x, y}

    def test_freeze_keeps_constants(self):
        q = parse_query("q(x) <- E('hub', x)")
        frozen, _ = q.freeze()
        assert Constant("hub") in frozen.domain()

    def test_unfreeze_roundtrip(self):
        q = parse_query("q(x) <- E(x,y), S(x)")
        frozen, mapping = q.freeze()
        back = unfreeze(frozen, mapping, q)
        assert set(back.body) == set(q.body)
        assert back.head == q.head

    def test_unfreeze_names_chase_nulls(self):
        q = parse_query("q(x) <- S(x)")
        frozen, mapping = q.freeze()
        frozen.add(Atom("E", (mapping[x], Null(77))))
        back = unfreeze(frozen, mapping, q)
        new_vars = {v.name for atom in back.body for v in atom.variables()}
        assert "x" in new_vars and any(n.startswith("z") for n in new_vars)
