"""Compiled CQ evaluation vs the reference oracle.

The acceptance bar of the query subsystem: :func:`compiled_answers`
(id-level projection, dedup and null filtering pushed into the
compiled join plan) must produce exactly the answers of
:func:`reference_answers` (the pre-plan term-level loop) -- on both
storage backends, on hand-written edge cases and on randomized
generator workloads, with and without the constants-only filter.
"""

import random

import pytest

from repro.chase import chase
from repro.cq.evaluate import (compile_query, compiled_answers,
                               reference_answers)
from repro.cq.query import ConjunctiveQuery
from repro.homomorphism.engine import reference_engine
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.parser import parse_constraints, parse_instance, parse_query
from repro.lang.terms import Constant, Null, Variable
from repro.workloads.families import example9_instance
from repro.workloads.paper import example8_beta
from repro.workloads.generators import (random_full_tgds,
                                        random_graph_instance,
                                        random_instance, random_schema)

BACKENDS = ["set", "column"]

QUERIES = [
    "q(x, z) <- E(x, y), E(y, z)",               # join
    "q(u) <- S(u), E(u, v)",                     # existential body var
    "q(x, y) <- E(x, y), S(x), S(y)",            # triangle of conditions
    "q(x, x2) <- E(x, x2), E(x2, x)",            # symmetric join
    "q(x) <- E('a', x)",                         # constant in the body
    "q(x, x) <- E(x, y)",                        # repeated head variable
]

GRAPH = "E(a, b). E(b, c). E(c, a). E(a, ?n1). E(?n1, c). S(a). S(b). S(?n1)"


def both(text):
    facts = parse_instance(text).facts()
    return [Instance(facts, backend=backend) for backend in BACKENDS]


class TestParityHandwritten:
    @pytest.mark.parametrize("query_text", QUERIES)
    @pytest.mark.parametrize("constants_only", [True, False])
    def test_compiled_matches_reference(self, query_text, constants_only):
        query = parse_query(query_text)
        for instance in both(GRAPH):
            compiled = compiled_answers(query, instance, constants_only)
            reference = reference_answers(query, instance, constants_only)
            assert compiled == reference, (query_text, instance.backend)

    def test_null_filtering_edge_cases(self):
        """Null heads are dropped by the id-level filter exactly when
        the term-level filter would drop them -- including answers
        whose join runs *through* a null but outputs constants."""
        query = parse_query("q(x, z) <- E(x, y), E(y, z)")
        for instance in both(GRAPH):
            with_nulls = compiled_answers(query, instance,
                                          constants_only=False)
            without = compiled_answers(query, instance)
            assert without < with_nulls
            assert all(not any(isinstance(t, Null) for t in row)
                       for row in without)
            # a -> ?n1 -> c joins through the null, outputs constants
            assert (Constant("a"), Constant("c")) in without
            dropped = with_nulls - without
            assert dropped and all(any(isinstance(t, Null) for t in row)
                                   for row in dropped)

    def test_constant_head_terms_pass_through(self):
        query = ConjunctiveQuery(
            "q", (Constant("tag"), Variable("x")),
            parse_query("h(x) <- S(x)").body)
        for instance in both(GRAPH):
            assert (compiled_answers(query, instance)
                    == reference_answers(query, instance))
            assert all(row[0] == Constant("tag")
                       for row in compiled_answers(query, instance))

    def test_boolean_query(self):
        boolean = ConjunctiveQuery("q", (),
                                   parse_query("h(x) <- S(x), E(x, y)").body)
        for instance in both(GRAPH):
            assert boolean.holds_in(instance)
            assert compiled_answers(boolean, instance) == {()}
        empty = Instance()
        assert not boolean.holds_in(empty)
        assert compiled_answers(boolean, empty) == set()

    def test_evaluate_routes_through_reference_mode(self):
        """Inside reference_engine() the facade evaluates via the
        oracle -- and still agrees with the compiled path."""
        query = parse_query(QUERIES[0])
        for instance in both(GRAPH):
            fast = query.evaluate(instance)
            with reference_engine():
                assert query.evaluate(instance) == fast

    def test_compiled_query_is_cached(self):
        left = parse_query(QUERIES[0])
        right = parse_query(QUERIES[0])
        assert compile_query(left) is compile_query(right)


class TestParityOnChasedInstances:
    """Queries over instances the chase filled with labeled nulls."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_safe_workload_answers_agree(self, backend):
        result = chase(Instance(example9_instance(8).facts(),
                                backend=backend),
                       example8_beta(), max_steps=100_000)
        assert result.terminated
        for query_text in ("q(x1, x3) <- R(x1, x2, x3), S(x3)",
                           "q(x1, x2) <- R(x1, x2, x3)"):
            query = parse_query(query_text)
            for constants_only in (True, False):
                assert (compiled_answers(query, result.instance,
                                         constants_only)
                        == reference_answers(query, result.instance,
                                             constants_only))
        # the chase put nulls into R's middle position, so the filter
        # must be load-bearing for the second query
        assert (compiled_answers(query, result.instance, False)
                != compiled_answers(query, result.instance, True))


def _random_query(rng, schema, max_atoms=3):
    """A random query over ``schema`` with a variable pool small
    enough to force joins; the head exports a sample of body vars."""
    pool = [Variable(f"v{i}") for i in range(4)]
    body = []
    for _ in range(rng.randint(1, max_atoms)):
        relation = rng.choice(list(schema))
        body.append(Atom(relation, tuple(rng.choice(pool)
                                         for _ in range(schema.arity(relation)))))
    body_vars = sorted({v for atom in body for v in atom.variables()},
                       key=lambda v: v.name)
    head = tuple(rng.sample(body_vars, rng.randint(1, len(body_vars))))
    return ConjunctiveQuery("q", head, tuple(body))


class TestRandomizedCrossValidation:
    @pytest.mark.parametrize("seed", range(10))
    def test_generator_workloads_agree(self, seed):
        """Random queries over chased random instances: compiled and
        reference answers identical on both backends (and across the
        backends, which pins the store access paths too)."""
        rng = random.Random(seed)
        schema = random_schema(rng)
        sigma = random_full_tgds(seed, size=3)
        facts = sorted(random_instance(seed, schema, n_facts=14).facts(),
                       key=str)
        queries = [_random_query(rng, schema) for _ in range(4)]
        per_backend = []
        for backend in BACKENDS:
            result = chase(Instance(facts, backend=backend), sigma,
                           max_steps=5_000)
            assert result.terminated
            answers = []
            for query in queries:
                compiled = compiled_answers(query, result.instance)
                assert compiled == reference_answers(query, result.instance)
                answers.append(compiled)
            per_backend.append(answers)
        assert per_backend[0] == per_backend[1]

    @pytest.mark.parametrize("seed", range(6))
    def test_graph_workloads_agree(self, seed):
        instance = random_graph_instance(seed, n_nodes=7)
        for backend in BACKENDS:
            rebuilt = Instance(instance.facts(), backend=backend)
            for query_text in QUERIES:
                query = parse_query(query_text)
                assert (compiled_answers(query, rebuilt)
                        == reference_answers(query, rebuilt)), query_text
