"""The Theorem 8 reduction: chasing Sigma_M simulates machine M.

Undecidability is a theorem, not a test; what we verify is the gadget's
*operational* behaviour: the probe constraint alpha_t can fire iff the
machine actually uses transition t.
"""

import pytest

from repro.chase import chase, OrderedStrategy
from repro.lang.instance import Instance
from repro.lang.parser import parse_instance
from repro.workloads.turing import (compile_machine, sample_halting_machine,
                                    sample_unreachable_transition_machine,
                                    Transition, TuringMachine)


def _probe_fired(result, name: str) -> bool:
    return any(fact.relation == "A_" + name for fact in result.instance)


class TestReferenceInterpreter:
    def test_halting_machine_uses_both_transitions(self):
        machine = sample_halting_machine()
        used = machine.run()
        assert len(used) == 2

    def test_unreachable_transition_never_used(self):
        machine = sample_unreachable_transition_machine()
        assert machine.run() == []


class TestCompilation:
    def test_probe_per_transition(self):
        machine = sample_halting_machine()
        compiled = compile_machine(machine)
        for transition in machine.transitions:
            assert transition.name in compiled

    def test_initial_configuration_fires_once(self):
        machine = sample_halting_machine()
        sigma = compile_machine(machine)["sigma"]
        init = [c for c in sigma if c.label == "init"]
        assert len(init) == 1 and init[0].body == ()


class TestSimulation:
    def test_used_transitions_fire(self):
        """Both transitions of the halting machine leave A_t facts."""
        machine = sample_halting_machine()
        sigma = compile_machine(machine)["sigma"]
        result = chase(Instance(), sigma, strategy=OrderedStrategy(),
                       max_steps=3000)
        for transition in machine.transitions:
            assert _probe_fired(result, transition.name), transition.name

    def test_unreachable_transition_never_fires(self):
        machine = sample_unreachable_transition_machine()
        sigma = compile_machine(machine)["sigma"]
        result = chase(Instance(), sigma, strategy=OrderedStrategy(),
                       max_steps=2000)
        (transition,) = machine.transitions
        assert not _probe_fired(result, transition.name)

    def test_grid_structure(self):
        """Rows are linked by L/R vertical edges (the proof's grid)."""
        machine = sample_halting_machine()
        sigma = compile_machine(machine)["sigma"]
        result = chase(Instance(), sigma, strategy=OrderedStrategy(),
                       max_steps=3000)
        relations = {fact.relation for fact in result.instance}
        assert {"T", "H", "L", "R"} <= relations

    def test_looping_machine_diverges(self):
        """A machine that loops forever yields a divergent chase --
        the operational heart of the Theorem 8 reduction."""
        machine = TuringMachine(
            states=["s0"], alphabet=["1"], initial_state="s0",
            transitions=[Transition("s0", "_", "s0", "_", "R")])
        sigma = compile_machine(machine)["sigma"]
        result = chase(Instance(), sigma, strategy=OrderedStrategy(),
                       max_steps=600)
        assert not result.terminated
