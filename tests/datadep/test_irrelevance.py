"""(I, Sigma)-irrelevance and the static guarantee (Section 4.1)."""

import pytest

from repro.datadep.irrelevance import (instance_constraint,
                                       irrelevant_constraints,
                                       relevant_constraints,
                                       terminates_statically)
from repro.chase import chase
from repro.lang.instance import Instance
from repro.lang.parser import parse_constraints, parse_instance
from repro.workloads.paper import (figure9, query_q1, query_q2)


class TestInstanceConstraint:
    def test_alpha_i_shape(self):
        inst = parse_instance("E(a,b). S(a)")
        alpha_i = instance_constraint(inst)
        assert alpha_i.body == ()
        assert len(alpha_i.head) == 2
        # every element became an existential variable
        assert len(alpha_i.existential_variables()) == 2

    def test_nulls_also_become_variables(self):
        inst = parse_instance("E(a, ?n1)")
        alpha_i = instance_constraint(inst)
        assert len(alpha_i.existential_variables()) == 2

    def test_empty_instance_rejected(self):
        with pytest.raises(ValueError):
            instance_constraint(Instance())


class TestExample16:
    def test_q2_irrelevance(self):
        """Chasing q2: alpha2 and alpha3 are certified irrelevant."""
        sigma = figure9()
        frozen, _ = query_q2().freeze()
        relevant = relevant_constraints(frozen, sigma)
        assert {c.label for c in relevant} == {"a1"}
        irrelevant = irrelevant_constraints(frozen, sigma)
        assert {c.label for c in irrelevant} == {"a2", "a3"}

    def test_q2_terminates_statically(self):
        sigma = figure9()
        frozen, _ = query_q2().freeze()
        assert terminates_statically(frozen, sigma) == 2
        # ... and the chase indeed terminates
        result = chase(frozen, sigma, max_steps=100)
        assert result.terminated

    def test_q1_no_guarantee(self):
        """q1 triggers alpha3 whose chase diverges: no static
        guarantee, and the chase indeed exceeds any budget."""
        sigma = figure9()
        frozen, _ = query_q1().freeze()
        relevant = relevant_constraints(frozen, sigma)
        assert "a3" in {c.label for c in relevant}
        assert terminates_statically(frozen, sigma) is None
        result = chase(frozen, sigma, max_steps=200)
        assert not result.terminated


class TestConservativeness:
    def test_empty_body_constraints_always_relevant(self):
        sigma = parse_constraints("b3: -> S(x), E(x,y); a: S(x) -> T(x)")
        inst = parse_instance("E(a,b)")
        relevant = relevant_constraints(inst, sigma)
        assert "b3" in {c.label for c in relevant}

    def test_disconnected_constraints_irrelevant(self):
        sigma = parse_constraints("a: P(x) -> Q(x); b: Z(x) -> W(x)")
        inst = parse_instance("P(c)")
        irrelevant = irrelevant_constraints(inst, sigma)
        assert {c.label for c in irrelevant} == {"b"}

    def test_transitive_relevance(self):
        sigma = parse_constraints("a: P(x) -> Q(x); b: Q(x) -> W(x)")
        inst = parse_instance("P(c)")
        relevant = relevant_constraints(inst, sigma)
        assert {c.label for c in relevant} == {"a", "b"}
