"""Monitor graph and k-cyclicity tests (Definitions 17-19, Ex. 17/18,
Proposition 11, Lemma 5)."""

import pytest
from hypothesis import given, settings

from repro.chase import chase, ChaseStatus
from repro.datadep.monitor import MonitorGraph
from repro.datadep.monitored_chase import monitored_chase, pay_as_you_go
from repro.lang.atoms import Position
from repro.lang.parser import parse_constraints, parse_instance
from repro.workloads.families import prop11_family
from repro.workloads.paper import example17_instance, example17_sigma

from tests.conftest import graph_instances, graph_tgd_sets


class TestExample17:
    def test_monitor_graph_structure(self):
        result = chase(example17_instance(), example17_sigma())
        assert result.terminated and result.length == 3
        graph = MonitorGraph.from_sequence(result.sequence)
        assert len(graph.nodes) == 3
        assert len(graph.edges) == 3
        # all three nulls first appear at E^1
        assert all(node.positions == frozenset({Position("E", 1)})
                   for node in graph.nodes.values())
        # the path y1 -> y2 -> y3 shares one label; the skip edge
        # y1 -> y3 carries body position E^2 instead
        bodies = sorted(tuple(sorted(map(str, e.body_positions)))
                        for e in graph.edges)
        assert bodies == [("E^1",), ("E^1",), ("E^2",)]

    def test_example18_cyclicity(self):
        result = chase(example17_instance(), example17_sigma())
        graph = MonitorGraph.from_sequence(result.sequence)
        assert graph.is_k_cyclic(2)
        assert not graph.is_k_cyclic(3)
        assert graph.cycle_depth == 2


class TestProposition11:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
    def test_frontier(self, k):
        sigma, inst = prop11_family(k)
        result = chase(inst, sigma)
        assert result.terminated
        graph = MonitorGraph.from_sequence(result.sequence)
        assert graph.is_k_cyclic(k - 1)
        assert not graph.is_k_cyclic(k)

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_monitored_chase_pay_as_you_go(self, k):
        sigma, inst = prop11_family(k)
        assert monitored_chase(inst, sigma, k - 1).aborted
        assert not monitored_chase(inst, sigma, k).aborted
        payg = pay_as_you_go(inst, sigma, max_cycle_limit=k + 2)
        assert not payg.aborted
        assert payg.cycle_limit == k

    def test_family_not_inductively_restricted(self):
        from repro.termination.restriction import is_inductively_restricted
        sigma, _inst = prop11_family(3)
        assert not is_inductively_restricted(sigma)


class TestDivergenceDetection:
    def test_intro_alpha2_aborts_quickly(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        result = monitored_chase(parse_instance("S(a)"), sigma, 3,
                                 max_steps=10_000)
        assert result.aborted
        # caught after a handful of steps, not after the full budget
        assert result.result.length < 20

    def test_terminating_set_unaffected(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        result = monitored_chase(parse_instance("S(a). S(b)"), sigma, 1)
        assert result.status is ChaseStatus.TERMINATED

    def test_invalid_limit(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        with pytest.raises(ValueError):
            monitored_chase(parse_instance("S(a)"), sigma, 0)


class TestMonitorGraphInvariants:
    def test_egd_steps_ignored(self):
        sigma = parse_constraints("""
            S(x) -> E(x,y);
            E(x,y), E(x,z) -> y = z
        """)
        result = chase(parse_instance("S(a). E(a,b)"), sigma)
        graph = MonitorGraph.from_sequence(result.sequence)
        assert result.terminated

    def test_initial_nulls_are_not_nodes(self):
        """Definition 18: only nulls created during the run become
        nodes; nulls of the input instance do not."""
        sigma = parse_constraints("S(x) -> E(x,y)")
        result = chase(parse_instance("S(?n1)"), sigma)
        graph = MonitorGraph.from_sequence(result.sequence)
        assert len(graph.nodes) == 1  # only the chase-created null
        assert len(graph.edges) == 0  # ?n1 is not a node, so no edge

    @given(graph_tgd_sets(max_size=2), graph_instances())
    @settings(max_examples=25, deadline=None)
    def test_acyclic_forest_property(self, sigma, inst):
        """Proposition 8: the monitor graph is a DAG whose edges point
        from earlier-created to later-created nulls."""
        result = chase(inst, sigma, max_steps=200)
        graph = MonitorGraph.from_sequence(result.sequence)
        order = {null: i for i, null in enumerate(graph.nodes)}
        for edge in graph.edges:
            assert order[edge.source.null] < order[edge.target.null]

    @given(graph_instances())
    @settings(max_examples=15, deadline=None)
    def test_lemma5_contrapositive(self, inst):
        """A terminating run's monitor graph has bounded cycle depth;
        re-running under that limit + 1 never aborts (Lemma 5's
        pay-as-you-go reading)."""
        sigma = parse_constraints("S(x), E(x,y) -> E(y,z)")
        result = chase(inst, sigma, max_steps=500)
        if result.terminated:
            depth = MonitorGraph.from_sequence(result.sequence).cycle_depth
            monitored = monitored_chase(inst, sigma, depth + 1,
                                        max_steps=500)
            assert not monitored.aborted
