"""Single chase-step tests."""

import pytest

from repro.chase.step import apply_egd_step, apply_step, apply_tgd_step
from repro.lang.atoms import Atom
from repro.lang.errors import ChaseFailure
from repro.lang.instance import Instance
from repro.lang.parser import parse_constraint, parse_instance
from repro.lang.terms import Constant, Null, NullFactory, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b = Constant("a"), Constant("b")


class TestTGDStep:
    def test_adds_grounded_head(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        inst = parse_instance("S(a)")
        step = apply_tgd_step(inst, tgd, {x: a}, nulls=NullFactory(start=900))
        assert step.new_facts == (Atom("E", (a, Null(900))),)
        assert step.new_nulls == (Null(900),)
        assert Atom("E", (a, Null(900))) in inst

    def test_full_tgd_creates_no_nulls(self):
        tgd = parse_constraint("E(x,y) -> E(y,x)")
        inst = parse_instance("E(a,b)")
        step = apply_tgd_step(inst, tgd, {x: a, y: b})
        assert step.new_nulls == ()
        assert Atom("E", (b, a)) in inst

    def test_duplicate_head_atoms_not_reported(self):
        tgd = parse_constraint("E(x,y) -> E(y,x)")
        inst = parse_instance("E(a,a)")
        step = apply_tgd_step(inst, tgd, {x: a, y: a})
        assert step.new_facts == ()

    def test_assignment_frozen_deterministically(self):
        tgd = parse_constraint("E(x,y) -> E(y,x)")
        inst = parse_instance("E(a,b)")
        step = apply_tgd_step(inst, tgd, {y: b, x: a})
        assert step.assignment == (("x", a), ("y", b))
        assert step.assignment_dict() == {x: a, y: b}


class TestEGDStep:
    def test_null_substituted_by_constant(self):
        egd = parse_constraint("E(u,v), E(u,w) -> v = w")
        inst = parse_instance("E(a,b). E(a,?n1)")
        binding = {Variable("u"): a, Variable("v"): b, Variable("w"): Null(1)}
        step = apply_egd_step(inst, egd, binding)
        assert step.substitution == (Null(1), b)
        assert inst == parse_instance("E(a,b)")

    def test_prefers_removing_the_null(self):
        egd = parse_constraint("E(u,v), E(u,w) -> v = w")
        inst = parse_instance("E(a,?n1). E(a,b)")
        binding = {Variable("u"): a, Variable("v"): Null(1), Variable("w"): b}
        step = apply_egd_step(inst, egd, binding)
        assert step.substitution == (Null(1), b)

    def test_two_constants_fail(self):
        egd = parse_constraint("E(u,v), E(u,w) -> v = w")
        inst = parse_instance("E(a,b). E(a,c)")
        binding = {Variable("u"): a, Variable("v"): b,
                   Variable("w"): Constant("c")}
        with pytest.raises(ChaseFailure):
            apply_egd_step(inst, egd, binding)

    def test_equal_values_rejected(self):
        egd = parse_constraint("E(u,v), E(u,w) -> v = w")
        inst = parse_instance("E(a,b)")
        binding = {Variable("u"): a, Variable("v"): b, Variable("w"): b}
        with pytest.raises(ValueError):
            apply_egd_step(inst, egd, binding)


class TestDispatch:
    def test_apply_step_dispatches(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        inst = parse_instance("S(a)")
        step = apply_step(inst, tgd, {x: a})
        assert step.constraint is tgd
        assert not step.oblivious

    def test_describe_mentions_constraint(self):
        tgd = parse_constraint("lbl: S(x) -> E(x,y)")
        inst = parse_instance("S(a)")
        step = apply_step(inst, tgd, {x: a}, oblivious=True)
        assert "lbl" in step.describe()
        assert "*" in step.describe()
