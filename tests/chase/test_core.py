"""Core-computation tests."""

from hypothesis import given, settings

from repro.chase.core import core, is_core
from repro.homomorphism.engine import null_renaming_equivalent
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.parser import parse_instance
from repro.lang.terms import Constant, Null

from tests.conftest import graph_instances

a, b = Constant("a"), Constant("b")


class TestCore:
    def test_constant_instance_is_its_own_core(self):
        inst = parse_instance("E(a,b). E(b,a)")
        assert is_core(inst)
        assert core(inst) == inst

    def test_redundant_null_folded(self):
        # E(a, n1) folds into E(a, b)
        inst = Instance([Atom("E", (a, b)), Atom("E", (a, Null(1)))])
        folded = core(inst)
        assert folded == parse_instance("E(a,b)")

    def test_null_chain_folds(self):
        inst = Instance([Atom("E", (a, Null(1))), Atom("E", (Null(1), Null(2))),
                         Atom("E", (a, b)), Atom("E", (b, a))])
        folded = core(inst)
        assert folded == parse_instance("E(a,b). E(b,a)")

    def test_non_foldable_nulls_remain(self):
        inst = Instance([Atom("E", (a, Null(1)))])
        assert is_core(inst)

    def test_injective_null_drop_is_found(self):
        """Pins the behaviour behind ``is_endomorphism_proper``: the
        only improving endomorphism here is injective on its values
        (n1 -> a) but drops a null -- the fixed properness test must
        not filter it out."""
        inst = Instance([Atom("S", (Null(1),)), Atom("S", (a,))])
        assert not is_core(inst)
        assert core(inst) == parse_instance("S(a)")

    def test_null_permutations_never_fold(self):
        """A symmetric null pair only admits permutation endomorphisms,
        which the properness filter skips -- the instance is a core."""
        inst = Instance([Atom("E", (Null(1), Null(2))),
                         Atom("E", (Null(2), Null(1)))])
        assert is_core(inst)

    @given(graph_instances())
    @settings(max_examples=25, deadline=None)
    def test_core_is_equivalent_and_minimal(self, inst):
        folded = core(inst)
        assert null_renaming_equivalent(folded, inst)
        assert is_core(folded)
        assert len(folded) <= len(inst)
