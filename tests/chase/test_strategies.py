"""Strategy tests, centred on Example 4/5 and Theorem 2."""

import pytest

from repro.chase import (chase, ChaseStatus, OrderedStrategy,
                         RoundRobinStrategy, StratifiedStrategy)
from repro.homomorphism.extend import all_satisfied
from repro.lang.parser import parse_constraints, parse_instance
from repro.termination.stratification import (chase_strata,
                                              stratified_strategy)
from repro.workloads.paper import (example4, example4_instance,
                                   example5_instance)


class TestExample4:
    """The paper's refutation of [9]: a stratified set whose naive
    chase diverges but whose Theorem 2 stratum order terminates."""

    def test_round_robin_diverges(self):
        result = chase(example4_instance(), example4(),
                       strategy=RoundRobinStrategy(), max_steps=400)
        assert result.status is ChaseStatus.EXCEEDED_BUDGET

    def test_ordered_strategy_diverges(self):
        result = chase(example4_instance(), example4(),
                       strategy=OrderedStrategy(), max_steps=400)
        assert result.status is ChaseStatus.EXCEEDED_BUDGET

    def test_theorem2_strategy_terminates(self):
        sigma = example4()
        strategy = stratified_strategy(sigma, verify=True)
        result = chase(example4_instance(), sigma, strategy=strategy,
                       max_steps=400)
        assert result.terminated
        assert all_satisfied(sigma, result.instance)

    def test_theorem2_on_example5_instance(self):
        """Example 5 chases {R(a), T(b,b)} to completion in 5 steps."""
        sigma = example4()
        strategy = stratified_strategy(sigma)
        result = chase(example5_instance(), sigma, strategy=strategy,
                       max_steps=400)
        assert result.terminated
        assert all_satisfied(sigma, result.instance)
        # the cycle {a1, a3, a4} precedes {a2} in the strata
        strata = chase_strata(sigma)
        labels = [sorted(c.label for c in stratum) for stratum in strata]
        assert labels.index(["a1", "a3", "a4"]) < labels.index(["a2"])

    def test_strata_partition_sigma(self):
        sigma = example4()
        strata = chase_strata(sigma)
        flattened = [c for stratum in strata for c in stratum]
        assert sorted(c.label for c in flattened) == ["a1", "a2", "a3", "a4"]


class TestStratifiedStrategyValidation:
    def test_rejects_non_covering_strata(self):
        sigma = parse_constraints("a: S(x) -> E(x,y); b: E(x,y) -> E(y,x)")
        strategy = StratifiedStrategy([[sigma[0]]])
        with pytest.raises(ValueError):
            chase(parse_instance("S(a)"), sigma, strategy=strategy)

    def test_single_stratum_behaves_like_ordered(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        strategy = StratifiedStrategy([sigma])
        result = chase(parse_instance("S(a)"), sigma, strategy=strategy)
        assert result.terminated


class TestStrategyCompatibility:
    def test_reused_strategy_falls_back_to_naive(self):
        """After a run ends, a reused strategy must answer select()
        for a new instance instead of consulting the dead index."""
        from repro.lang.parser import parse_constraints, parse_instance
        sigma = parse_constraints("S(x) -> E(x,y)")
        strategy = OrderedStrategy()
        result = chase(parse_instance("S(a)"), sigma, strategy=strategy)
        assert result.terminated
        selection = strategy.select(parse_instance("S(zz)"))
        assert selection is not None  # S(zz) violates the TGD

    def test_duck_typed_pre_index_strategy_still_works(self):
        """A plain object honouring the pre-index start/select contract
        (no Strategy subclassing, no attach_triggers) must still run."""
        from repro.homomorphism.extend import violation
        from repro.lang.parser import parse_constraints, parse_instance

        class Legacy:
            def start(self, sigma, instance):
                self.sigma = list(sigma)

            def select(self, instance):
                for constraint in self.sigma:
                    assignment = violation(constraint, instance)
                    if assignment is not None:
                        return constraint, assignment
                return None

        sigma = parse_constraints("S(x) -> E(x,y)")
        result = chase(parse_instance("S(a)"), sigma, strategy=Legacy())
        assert result.terminated and result.length == 1
