"""ChaseResult / budget-probe utilities."""

from repro.chase import (chase, chase_with_budget_probe, ChaseStatus,
                         RoundRobinStrategy)
from repro.lang.parser import parse_constraints, parse_instance
from repro.workloads.paper import example4, example4_instance


class TestChaseResult:
    def test_describe_lists_steps(self):
        sigma = parse_constraints("lbl: S(x) -> T(x)")
        result = chase(parse_instance("S(a)"), sigma)
        text = result.describe()
        assert "terminated" in text
        assert "lbl" in text and "T(a)" in text

    def test_length_and_null_count(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        result = chase(parse_instance("S(a). S(b)"), sigma)
        assert result.length == 2
        assert result.new_null_count() == 2


class TestBudgetProbe:
    def test_returns_first_conclusive_budget(self):
        sigma = parse_constraints("S(x) -> T(x); T(x) -> U(x)")
        result, budget = chase_with_budget_probe(
            parse_instance("S(a)"), sigma, budgets=[1, 10, 100])
        assert result.status is ChaseStatus.TERMINATED
        assert budget == 10

    def test_divergent_exhausts_all_budgets(self):
        result, budget = chase_with_budget_probe(
            example4_instance(), example4(), budgets=[50, 100])
        assert result.status is ChaseStatus.EXCEEDED_BUDGET
        assert budget == 100
