"""TriggerIndex tests: unit behaviour + naive/incremental cross-validation.

The incremental (semi-naive) chase must be indistinguishable from the
naive reference path up to the classical order-independence guarantees:
identical statuses, and homomorphically equivalent results for
terminating runs (``null_renaming_equivalent``, Section 2).
"""

import pytest
from hypothesis import given, settings

from repro.chase import (chase, ChaseStatus, oblivious_chase,
                         OrderedStrategy, RandomStrategy, RoundRobinStrategy,
                         TriggerIndex)
from repro.homomorphism.engine import null_renaming_equivalent
from repro.homomorphism.extend import all_satisfied
from repro.lang.parser import parse_constraints, parse_instance
from repro.termination.stratification import stratified_strategy
from repro.workloads.families import (bounded_null_cascade, chain_instance,
                                      cycle_instance, example9_instance,
                                      full_tgd_chain, prop11_family,
                                      special_nodes_instance)
from repro.workloads.paper import (example2_gamma, example4,
                                   example4_instance, example5_instance,
                                   example8_beta, example13, figure2,
                                   intro_alpha1, intro_alpha2,
                                   intro_instance)

from tests.conftest import graph_instances, graph_tgd_sets


# Every workload family the repo benchmarks, as (sigma, instance) pairs.
FAMILIES = [
    ("intro_alpha1", intro_alpha1(), intro_instance()),
    ("intro_alpha2_divergent", intro_alpha2(), intro_instance()),
    ("figure2", figure2(), special_nodes_instance(8)),
    ("example2_gamma", example2_gamma(), cycle_instance(6)),
    ("example4_divergent", example4(), example4_instance()),
    ("example4_on_example5", example4(), example5_instance()),
    ("example8_beta", example8_beta(), example9_instance(8)),
    ("example13", example13(), special_nodes_instance(6, spacing=2)),
    ("full_tgd_chain", full_tgd_chain(5), chain_instance(6, "R0")),
    ("null_cascade", bounded_null_cascade(4),
     parse_instance("L0(a). L0(b)")),
    ("prop11", *prop11_family(3)),
    ("egd_merge", parse_constraints("E(x,y), E(x,z) -> y = z"),
     parse_instance("E(a,b). E(a,?n1). E(?n1,c)")),
    ("egd_failure", parse_constraints("E(x,y), E(x,z) -> y = z"),
     parse_instance("E(a,b). E(a,c)")),
    ("egd_tgd_interplay",
     parse_constraints("S(x) -> E(x,y); E(x,y), E(x,z) -> y = z"),
     parse_instance("S(a). E(a,b). S(b)")),
]


@pytest.mark.parametrize("name,sigma,instance", FAMILIES,
                         ids=[f[0] for f in FAMILIES])
@pytest.mark.parametrize("strategy_factory",
                         [OrderedStrategy, RoundRobinStrategy],
                         ids=["ordered", "round_robin"])
def test_incremental_matches_naive(name, sigma, instance, strategy_factory):
    """Same status as the naive path; equivalent result on termination."""
    incremental = chase(instance, sigma, strategy=strategy_factory(),
                        max_steps=300)
    naive = chase(instance, sigma, strategy=strategy_factory(),
                  max_steps=300, naive=True)
    assert incremental.status is naive.status
    if incremental.terminated:
        assert all_satisfied(sigma, incremental.instance)
        assert null_renaming_equivalent(incremental.instance, naive.instance)


@pytest.mark.parametrize("name,sigma,instance", FAMILIES,
                         ids=[f[0] for f in FAMILIES])
def test_oblivious_incremental_matches_naive(name, sigma, instance):
    """The queue-driven oblivious chase agrees with restart-enumeration."""
    incremental = oblivious_chase(instance, sigma, max_steps=200)
    naive = oblivious_chase(instance, sigma, max_steps=200, naive=True)
    assert incremental.status is naive.status
    if incremental.terminated:
        assert incremental.length == naive.length
        assert null_renaming_equivalent(incremental.instance, naive.instance)


def test_stratified_cross_validation():
    """Theorem 2's stratum order terminates identically on both paths."""
    sigma = example4()
    incremental = chase(example4_instance(), sigma,
                        strategy=stratified_strategy(sigma, verify=True),
                        max_steps=400)
    naive = chase(example4_instance(), sigma,
                  strategy=stratified_strategy(sigma, verify=True),
                  max_steps=400, naive=True)
    assert incremental.terminated and naive.terminated
    assert null_renaming_equivalent(incremental.instance, naive.instance)


class TestPropertyCrossValidation:
    @given(graph_tgd_sets(max_size=2), graph_instances())
    @settings(max_examples=25, deadline=None)
    def test_random_tgd_sets_agree(self, sigma, inst):
        # Budget kept small: the *naive* reference side is quadratic in
        # the step count on divergent sets.
        incremental = chase(inst, sigma, strategy=OrderedStrategy(),
                            max_steps=80)
        naive = chase(inst, sigma, strategy=OrderedStrategy(),
                      max_steps=80, naive=True)
        assert incremental.status is naive.status
        if incremental.terminated:
            assert all_satisfied(sigma, incremental.instance)
            assert null_renaming_equivalent(incremental.instance,
                                            naive.instance)

    @given(graph_tgd_sets(max_size=2, allow_existential=False),
           graph_instances())
    @settings(max_examples=30, deadline=None)
    def test_random_strategy_incremental_sound(self, sigma, inst):
        result = chase(inst, sigma, strategy=RandomStrategy(seed=11),
                       max_steps=2000)
        assert result.terminated
        assert all_satisfied(sigma, result.instance)


class TestEdgeCases:
    def test_empty_body_tgd_fires_from_empty_instance(self):
        """Axiom TGDs (empty body) must be seeded explicitly: their
        empty homomorphism uses no fact, so no delta discovers it."""
        from repro.lang.atoms import Atom
        from repro.lang.constraints import TGD
        from repro.lang.instance import Instance
        from repro.lang.terms import Constant
        sigma = [TGD([], [Atom("S", (Constant("c"),))], label="axiom")]
        for naive in (False, True):
            result = chase(Instance(), sigma, naive=naive)
            assert result.terminated and result.length == 1
            assert len(result.instance) == 1

    def test_cross_product_body_cross_validates(self):
        """Disconnected (cross-product) bodies explode the homomorphism
        space; the lazy expansion must stay correct there."""
        sigma = parse_constraints("E(x,y), E(u,v), S(w) -> E(y,z), S(z)")
        inst = parse_instance("E(a,b). E(b,c). S(a). S(b)")
        incremental = chase(inst, sigma, max_steps=25)
        naive = chase(inst, sigma, max_steps=25, naive=True)
        assert incremental.status is naive.status is ChaseStatus.EXCEEDED_BUDGET

    def test_cross_product_body_terminating_agrees(self):
        sigma = parse_constraints("E(x,y), S(u) -> T(x,u)")
        inst = parse_instance("E(a,b). E(b,c). S(a). S(c)")
        incremental = chase(inst, sigma)
        naive = chase(inst, sigma, naive=True)
        assert incremental.terminated and naive.terminated
        assert incremental.instance == naive.instance


class TestTriggerIndexUnit:
    def test_seed_enumerates_initial_triggers(self):
        sigma = parse_constraints("a: S(x) -> E(x,y)")
        inst = parse_instance("S(a). S(b)")
        index = TriggerIndex(sigma, inst)
        assert index.pending_count(sigma[0]) == 2
        index.detach()

    def test_delta_discovers_new_triggers_only(self):
        sigma = parse_constraints("a: S(x) -> E(x,y)")
        inst = parse_instance("S(a)")
        index = TriggerIndex(sigma, inst)
        assert index.pending_count() == 1
        inst.add(parse_instance("S(b)").facts().pop())
        index.refresh()
        assert index.pending_count() == 2
        index.detach()

    def test_satisfied_triggers_are_never_enqueued(self):
        sigma = parse_constraints("a: S(x) -> E(x,y)")
        inst = parse_instance("S(a). E(a,b)")  # head already satisfied
        index = TriggerIndex(sigma, inst)
        assert index.next_active(sigma[0]) is None
        assert index.pending_count() == 0  # settled, remembered only
        index.detach()

    def test_removal_retires_triggers(self):
        from repro.lang.atoms import Atom
        from repro.lang.instance import Instance
        from repro.lang.terms import Constant, Null
        sigma = parse_constraints("a: E(x,y) -> T(x)")
        null = Null(901)
        inst = Instance([Atom("E", (Constant("a"), null))])
        index = TriggerIndex(sigma, inst)
        assert index.pending_count() == 1
        inst.substitute_term(null, Constant("b"))
        index.refresh()
        # the old trigger (through E(a, ?n901)) is retired; the new fact
        # E(a, b) yields a fresh trigger for the substituted assignment
        assignments = index.pending_assignments(sigma[0])
        assert len(assignments) == 1
        assert Constant("b") in assignments[0].values()
        index.detach()

    def test_mark_fired_consumes_and_blocks_rediscovery(self):
        sigma = parse_constraints("a: E(x,y) -> E(y,x)")
        inst = parse_instance("E(a,b)")
        index = TriggerIndex(sigma, inst, oblivious=True)
        constraint, assignment = index.pop_unfired()
        index.mark_fired(constraint, assignment)
        # Re-adding nothing: the fired trigger must not reappear.
        assert index.pop_unfired() is None
        index.detach()

    def test_oblivious_mode_keeps_satisfied_tgd_triggers(self):
        sigma = parse_constraints("a: S(x) -> E(x,y)")
        inst = parse_instance("S(a). E(a,b)")  # head already satisfied
        index = TriggerIndex(sigma, inst, oblivious=True)
        assert index.pop_unfired() is not None
        index.detach()

    def test_oblivious_mode_skips_trivial_egd_triggers(self):
        sigma = parse_constraints("a: E(x,y), E(y,x) -> x = y")
        inst = parse_instance("E(a,a)")
        index = TriggerIndex(sigma, inst, oblivious=True)
        assert index.pop_unfired() is None
        index.detach()

    def test_detach_stops_listening(self):
        sigma = parse_constraints("a: S(x) -> E(x,y)")
        inst = parse_instance("S(a)")
        index = TriggerIndex(sigma, inst)
        index.detach()
        inst.add(parse_instance("S(b)").facts().pop())
        index.refresh()
        assert index.pending_count() == 1  # never saw the new fact
