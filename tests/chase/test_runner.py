"""Chase runner tests: termination, failure, divergence, soundness."""

import pytest
from hypothesis import given, settings

from repro.chase import (chase, ChaseStatus, oblivious_chase,
                         OrderedStrategy, RandomStrategy, RoundRobinStrategy)
from repro.homomorphism.engine import null_renaming_equivalent
from repro.homomorphism.extend import all_satisfied
from repro.lang.parser import parse_constraints, parse_instance

from tests.conftest import graph_instances, graph_tgd_sets


class TestIntroExamples:
    def test_alpha1_terminates(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        result = chase(parse_instance("S(n1). S(n2). E(n1,n2)"), sigma)
        assert result.terminated
        assert len(result.instance) == 4
        assert all_satisfied(sigma, result.instance)

    def test_alpha2_diverges(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        result = chase(parse_instance("S(n1). S(n2). E(n1,n2)"), sigma,
                       max_steps=64)
        assert result.status is ChaseStatus.EXCEEDED_BUDGET

    def test_input_instance_untouched_by_default(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        inst = parse_instance("S(a)")
        chase(inst, sigma)
        assert len(inst) == 1

    def test_copy_false_mutates(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        inst = parse_instance("S(a)")
        chase(inst, sigma, copy=False)
        assert len(inst) == 2


class TestEGDs:
    def test_null_merging(self):
        sigma = parse_constraints("E(x,y), E(x,z) -> y = z")
        result = chase(parse_instance("E(a,b). E(a,?n1). E(?n1,c)"), sigma)
        assert result.terminated
        assert result.instance == parse_instance("E(a,b). E(b,c)")

    def test_failure_on_distinct_constants(self):
        sigma = parse_constraints("E(x,y), E(x,z) -> y = z")
        result = chase(parse_instance("E(a,b). E(a,c)"), sigma)
        assert result.status is ChaseStatus.FAILED
        assert result.failure_reason

    def test_fresh_nulls_disjoint_from_input_nulls(self):
        # Regression (found by `repro fuzz`, seed 0 case 97): a factory
        # whose counter lags behind the input instance's null labels
        # handed out a "fresh" ?n1 aliasing the existing ?n1, and the
        # EGD equating the old null silently rewrote the new one too.
        from repro.lang.terms import NullFactory
        sigma = parse_constraints("""
            P(x) -> R(x, y);
            Q(x, z) -> x = z
        """)
        result = chase(parse_instance("P(?n1). Q(?n1, a)"), sigma,
                       nulls=NullFactory())
        assert result.terminated
        # The TGD's fresh null must survive as a null distinct from
        # the merged-away input null ?n1; pre-fix the EGD rewrote it
        # to the constant `a` and the result carried no nulls at all.
        assert len(result.instance.nulls()) == 1

    def test_egd_plus_tgd_interplay(self):
        sigma = parse_constraints("""
            S(x) -> E(x,y);
            E(x,y), E(x,z) -> y = z
        """)
        result = chase(parse_instance("S(a). E(a,b)"), sigma)
        assert result.terminated
        assert all_satisfied(sigma, result.instance)


class TestSequenceRecording:
    def test_steps_recorded_in_order(self):
        sigma = parse_constraints("S(x) -> T(x); T(x) -> U(x)")
        result = chase(parse_instance("S(a)"), sigma)
        assert [s.index for s in result.sequence] == list(range(result.length))
        assert result.length == 2

    def test_new_nulls_reported(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        result = chase(parse_instance("S(a)"), sigma)
        assert result.new_null_count() == 1


class TestObliviousChase:
    def test_fires_satisfied_triggers_once(self):
        # alpha is satisfied (E(a,b) has an out-edge) but the oblivious
        # chase still fires it, once per trigger.
        sigma = parse_constraints("E(x,y) -> E(y,z)")
        result = oblivious_chase(parse_instance("E(a,b). E(b,c). E(c,a)"),
                                 sigma, max_steps=500)
        # every E-fact spawns one new null edge, which spawns another...
        assert result.status is ChaseStatus.EXCEEDED_BUDGET

    def test_terminates_on_non_generating_sets(self):
        sigma = parse_constraints(
            "E(x1,x2), E(x2,x1) -> E(x1,y1), E(y1,y2), E(y2,x1)")
        result = oblivious_chase(parse_instance("E(a,b). E(b,a)"), sigma,
                                 max_steps=500)
        assert result.terminated
        assert result.length == 2  # both homomorphisms of the 2-cycle

    def test_full_tgds_terminate(self):
        sigma = parse_constraints("E(x,y) -> E(y,x)")
        result = oblivious_chase(parse_instance("E(a,b)"), sigma)
        assert result.terminated
        assert len(result.instance) == 2


class TestChaseProperties:
    @given(graph_tgd_sets(max_size=2, allow_existential=False),
           graph_instances())
    @settings(max_examples=30, deadline=None)
    def test_full_tgd_chase_sound(self, sigma, inst):
        """Full TGDs always terminate and the result satisfies Sigma."""
        result = chase(inst, sigma, max_steps=5000)
        assert result.terminated
        assert all_satisfied(sigma, result.instance)

    @given(graph_tgd_sets(max_size=2), graph_instances())
    @settings(max_examples=30, deadline=None)
    def test_chase_orders_homomorphically_equivalent(self, sigma, inst):
        """Two terminating orders give homomorphically equivalent
        results (the classical result the paper recalls in Sec. 2)."""
        r1 = chase(inst, sigma, strategy=OrderedStrategy(), max_steps=300)
        r2 = chase(inst, sigma, strategy=RandomStrategy(seed=7),
                   max_steps=300)
        if r1.terminated and r2.terminated:
            assert null_renaming_equivalent(r1.instance, r2.instance)

    @given(graph_instances())
    @settings(max_examples=20, deadline=None)
    def test_round_robin_equals_ordered_on_terminating_sets(self, inst):
        sigma = parse_constraints("S(x) -> E(x,y); E(x,y) -> E(y,x)")
        r1 = chase(inst, sigma, strategy=RoundRobinStrategy())
        r2 = chase(inst, sigma, strategy=OrderedStrategy())
        assert r1.terminated and r2.terminated
        assert null_renaming_equivalent(r1.instance, r2.instance)
