"""Runner budget semantics: steps, facts and wall clock.

Every budget abort must surface as a distinct ``ChaseResult`` status
carrying the partial run -- never as an exception -- and the
wall-clock abort must be a true prefix of the unbounded run on the
divergent workload families (cross-validation: budgets change *when*
a run stops, not *what* it computes).
"""

import pytest

from repro.chase import chase, ChaseStatus, oblivious_chase
from repro.lang.parser import parse_constraints, parse_instance
from repro.lang.terms import NullFactory
from repro.workloads.families import special_nodes_instance
from repro.workloads.paper import (example4, example4_instance,
                                   intro_alpha2)

#: Divergent workload families: (constraints, instance) pairs whose
#: round-robin chase never terminates.
DIVERGENT_FAMILIES = [
    ("intro_alpha2", intro_alpha2, lambda: special_nodes_instance(4)),
    ("example4", example4, example4_instance),
]


@pytest.mark.parametrize("name,sigma,instance", DIVERGENT_FAMILIES,
                         ids=[f[0] for f in DIVERGENT_FAMILIES])
def test_wall_clock_abort_is_a_status_not_an_exception(name, sigma,
                                                       instance):
    result = chase(instance(), sigma(), max_steps=100_000_000,
                   wall_clock=0.05)
    assert result.status is ChaseStatus.EXCEEDED_WALL_CLOCK
    assert "wall-clock budget" in result.failure_reason
    assert result.length > 0                   # a partial run came back
    assert not result.terminated


@pytest.mark.parametrize("name,sigma,instance", DIVERGENT_FAMILIES,
                         ids=[f[0] for f in DIVERGENT_FAMILIES])
def test_wall_clock_abort_is_a_prefix_of_the_unbounded_run(name, sigma,
                                                           instance):
    """Cross-validation: the aborted run's sequence must replay the
    budgeted run step for step (same strategy, same null labels)."""
    aborted = chase(instance(), sigma(), max_steps=100_000_000,
                    wall_clock=0.05, nulls=NullFactory())
    reference = chase(instance(), sigma(), max_steps=aborted.length,
                      nulls=NullFactory())
    assert reference.status is ChaseStatus.EXCEEDED_BUDGET
    assert reference.length == aborted.length
    assert ([step.describe() for step in reference.sequence]
            == [step.describe() for step in aborted.sequence])
    assert reference.instance == aborted.instance


def test_fact_budget_aborts_with_budget_status():
    sigma = parse_constraints("a2: S(x) -> E(x, y), S(y)")
    instance = parse_instance("S(a).")
    result = chase(instance, sigma, max_steps=100_000_000, max_facts=25)
    assert result.status is ChaseStatus.EXCEEDED_BUDGET
    assert "fact budget" in result.failure_reason
    assert len(result.instance) > 25           # first crossing, then stop
    assert result.length < 100


def test_fixpoint_wins_over_every_budget():
    """An instance that already satisfies sigma is TERMINATED, however
    large it is and however tight the clock -- budgets only cut short
    runs that still have an active trigger."""
    sigma = parse_constraints("a: S(x) -> T(x)")
    satisfied = parse_instance("S(a). T(a). S(b). T(b).")
    assert chase(satisfied, sigma,
                 max_facts=3).status is ChaseStatus.TERMINATED
    assert chase(satisfied, sigma,
                 wall_clock=0.0).status is ChaseStatus.TERMINATED
    assert oblivious_chase(parse_instance("T(a)."), sigma,
                           max_facts=0).status is ChaseStatus.TERMINATED
    assert oblivious_chase(parse_instance("T(a)."), sigma, max_facts=0,
                           naive=True).status is ChaseStatus.TERMINATED


def test_fact_budget_does_not_fire_below_the_bound():
    sigma = parse_constraints("a1: S(x) -> E(x, y)")
    instance = parse_instance("S(a). S(b).")
    result = chase(instance, sigma, max_facts=100)
    assert result.status is ChaseStatus.TERMINATED


def test_oblivious_chase_honours_wall_clock_and_fact_budgets():
    sigma = parse_constraints("a2: S(x) -> E(x, y), S(y)")
    instance = parse_instance("S(a).")
    by_time = oblivious_chase(instance, sigma, max_steps=100_000_000,
                              wall_clock=0.05)
    assert by_time.status is ChaseStatus.EXCEEDED_WALL_CLOCK
    by_facts = oblivious_chase(instance, sigma, max_steps=100_000_000,
                               max_facts=25)
    assert by_facts.status is ChaseStatus.EXCEEDED_BUDGET
    naive = oblivious_chase(instance, sigma, max_steps=100_000_000,
                            max_facts=25, naive=True)
    assert naive.status is ChaseStatus.EXCEEDED_BUDGET


def test_zero_wall_clock_aborts_immediately_but_cleanly():
    sigma = parse_constraints("a1: S(x) -> E(x, y)")
    instance = parse_instance("S(a).")
    result = chase(instance, sigma, wall_clock=0.0)
    assert result.status is ChaseStatus.EXCEEDED_WALL_CLOCK
    assert result.length == 0
    assert len(result.instance) == 1           # input untouched


def test_budget_validation():
    sigma = parse_constraints("a1: S(x) -> E(x, y)")
    instance = parse_instance("S(a).")
    with pytest.raises(ValueError):
        chase(instance, sigma, max_facts=-1)
    with pytest.raises(ValueError):
        chase(instance, sigma, wall_clock=-0.5)


def test_status_helper_properties():
    assert ChaseStatus.EXCEEDED_BUDGET.is_budget_abort
    assert ChaseStatus.EXCEEDED_WALL_CLOCK.is_budget_abort
    assert not ChaseStatus.TERMINATED.is_budget_abort
    assert not ChaseStatus.EXCEEDED_WALL_CLOCK.is_deterministic
    assert all(status.is_deterministic for status in ChaseStatus
               if status is not ChaseStatus.EXCEEDED_WALL_CLOCK)


def test_monitored_chase_forwards_budgets_and_observers():
    from repro.datadep import monitored_chase
    sigma = parse_constraints("a2: S(x) -> E(x, y), S(y)")
    instance = parse_instance("S(a).")
    seen = []
    guarded = monitored_chase(instance, sigma, cycle_limit=50,
                              max_steps=100_000_000, max_facts=25,
                              observers=(lambda step, w:
                                         seen.append(step.index),))
    assert guarded.status is ChaseStatus.EXCEEDED_BUDGET
    assert seen == list(range(guarded.result.length))
