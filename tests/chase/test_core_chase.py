"""Core chase tests (the conclusions' remark on [9])."""

from repro.chase import chase, ChaseStatus, RoundRobinStrategy
from repro.chase.core import is_core
from repro.chase.core_chase import core_chase
from repro.homomorphism.extend import all_satisfied
from repro.lang.parser import parse_constraints, parse_instance
from repro.workloads.paper import example4, example4_instance


class TestCoreChase:
    def test_terminating_set(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        result = core_chase(parse_instance("S(a). E(a,b)"), sigma)
        assert result.status is ChaseStatus.TERMINATED
        # the null witness folds onto E(a,b): the core is the input
        assert result.instance == parse_instance("S(a). E(a,b)")

    def test_result_is_a_core_model(self):
        sigma = parse_constraints("S(x) -> E(x,y); E(x,y) -> E(y,x)")
        result = core_chase(parse_instance("S(a). S(b)"), sigma)
        assert result.status is ChaseStatus.TERMINATED
        assert all_satisfied(sigma, result.instance)
        assert is_core(result.instance)

    def test_tames_example4(self):
        """The core chase terminates on Example 4 even though the
        round-robin standard chase diverges: folding removes the
        spurious T(x, null) atoms each round."""
        sigma = example4()
        naive = chase(example4_instance(), sigma,
                      strategy=RoundRobinStrategy(), max_steps=200)
        assert naive.status is ChaseStatus.EXCEEDED_BUDGET
        cored = core_chase(example4_instance(), sigma, max_rounds=50,
                           steps_per_round=20)
        assert cored.status is ChaseStatus.TERMINATED
        assert all_satisfied(sigma, cored.instance)
        assert is_core(cored.instance)

    def test_genuinely_infinite_model_exceeds_budget(self):
        sigma = parse_constraints("P(x) -> Q(x,y), P(y)")
        result = core_chase(parse_instance("P(a)"), sigma, max_rounds=5,
                            steps_per_round=20)
        assert result.status is ChaseStatus.EXCEEDED_BUDGET

    def test_egd_failure_propagates(self):
        sigma = parse_constraints("E(x,y), E(x,z) -> y = z")
        result = core_chase(parse_instance("E(a,b). E(a,c)"), sigma)
        assert result.status is ChaseStatus.FAILED
