"""Rendering and CLI tests."""

from pathlib import Path

import pytest

from repro import viz
from repro.chase import chase
from repro.cli import main
from repro.datadep.monitor import MonitorGraph
from repro.termination.chase_graph import c_chase_graph, chase_graph
from repro.termination.dependency_graph import dependency_graph
from repro.termination.safety import propagation_graph
from repro.workloads.paper import (example4, example8_beta,
                                   example17_instance, example17_sigma,
                                   figure9)


class TestFigureRendering:
    def test_figure3_dot(self):
        dot = viz.render_figure3(figure9())
        assert "digraph figure3" in dot
        assert '"fly^2" -> "fly^2" [style=dashed, label="*"];' in dot

    def test_figure4_vs_figure5(self):
        """The c-chase graph DOT contains the (a2, a4) edge the chase
        graph DOT lacks -- the visual heart of the refutation."""
        fig4 = viz.render_figure4(example4())
        fig5 = viz.render_figure5(example4())
        assert '"a2" -> "a4"' not in fig4
        assert '"a2" -> "a4"' in fig5

    def test_figure6_both_panels(self):
        dep, prop = viz.render_figure6(example8_beta())
        assert "R^1" in dep
        # the propagation panel has the single affected vertex, no edges
        assert "->" not in prop.replace("rankdir=LR;", "")

    def test_monitor_graph_dot(self):
        result = chase(example17_instance(), example17_sigma())
        graph = MonitorGraph.from_sequence(result.sequence)
        dot = viz.monitor_graph_to_dot(graph)
        assert dot.count("->") == 3

    def test_ascii_adjacency_deterministic(self):
        graph = chase_graph(example4())
        text = viz.ascii_adjacency(graph,
                                   render_node=lambda c: c.display_name())
        assert text == viz.ascii_adjacency(
            chase_graph(example4()),
            render_node=lambda c: c.display_name())
        assert "a1 ->" in text


class TestCLI:
    @pytest.fixture
    def constraint_file(self, tmp_path: Path) -> str:
        path = tmp_path / "sigma.tgd"
        path.write_text("a1: S(x), E(x,y) -> E(y,x)\n"
                        "a2: S(x), E(x,y) -> E(y,z), E(z,x)\n")
        return str(path)

    @pytest.fixture
    def instance_file(self, tmp_path: Path) -> str:
        path = tmp_path / "db.txt"
        path.write_text("S(a). E(a,b)\n")
        return str(path)

    def test_analyze(self, constraint_file, capsys):
        rc = main(["analyze", constraint_file, "--max-k", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "inductively_restricted  : True" in out

    def test_analyze_divergent_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.tgd"
        path.write_text("S(x) -> E(x,y), S(y)\n")
        assert main(["analyze", str(path), "--max-k", "2"]) == 1

    def test_chase(self, constraint_file, instance_file, capsys):
        rc = main(["chase", constraint_file, "--instance", instance_file])
        out = capsys.readouterr().out
        assert rc == 0 and "status: terminated" in out

    def test_chase_with_monitor(self, tmp_path, instance_file, capsys):
        path = tmp_path / "bad.tgd"
        path.write_text("S(x) -> E(x,y), S(y)\n")
        rc = main(["chase", str(path), "--instance", instance_file,
                   "--cycle-limit", "3"])
        out = capsys.readouterr().out
        assert rc == 1 and "aborted_by_monitor" in out

    def test_graph_kinds(self, constraint_file, capsys):
        for kind in ("dep", "prop", "chase", "cchase"):
            rc = main(["graph", constraint_file, "--kind", kind])
            assert rc == 0
            assert "digraph" in capsys.readouterr().out

    def test_optimize(self, tmp_path, capsys):
        path = tmp_path / "fig9.tgd"
        from repro.lang.parser import render_constraints
        path.write_text(render_constraints(figure9()))
        rc = main(["optimize", str(path), "--query",
                   "rffr(x2) <- rail('c1', x1, y1), fly(x1, x2, y2), "
                   "fly(x2, x1, y2), rail(x1, 'c1', y1)"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "universal plan" in out and "minimal rewriting" in out

    def test_optimize_refuses_divergent_query(self, tmp_path, capsys):
        path = tmp_path / "fig9.tgd"
        from repro.lang.parser import render_constraints
        path.write_text(render_constraints(figure9()))
        rc = main(["optimize", str(path), "--query",
                   "rf(x2) <- rail('c1', x1, y1), fly(x1, x2, y2)"])
        assert rc == 1

    def test_missing_file_is_reported(self, capsys):
        rc = main(["analyze", "/nonexistent/sigma.tgd"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
