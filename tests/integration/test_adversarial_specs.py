"""Malformed and adversarial job specs against every service entry.

The contract under test: whatever a client throws at ``repro serve``,
``repro query``, ``repro batch`` or the spec parsers directly, the
answer is a *structured* error -- a :class:`WireError`/``ReproError``
from parsing, an ``{"status": "error", ...}`` payload from the serve
loop, exit code 2 from the CLI -- and **never a traceback**, neither
raised nor smuggled into a ``failure_reason`` string.
"""

import io
import json

import pytest

from repro.cli import main
from repro.service.jobs import ChaseJob, job_from_dict
from repro.service.query import QueryJob
from repro.service.serialize import WireError

GOOD = {"constraints": "S(x) -> E(x, y)", "instance": "S(a)."}


def serve_lines(monkeypatch, capsys, lines):
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
    assert main(["serve"]) == 0
    return [json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line]


# ----------------------------------------------------------------------
# spec parsing: every malformed shape raises WireError, not a crash
# ----------------------------------------------------------------------
@pytest.mark.parametrize("payload", [
    "not a dict", 42, ["constraints"], None, True,
])
def test_non_dict_specs_raise_wire_error(payload):
    with pytest.raises(WireError, match="must be an object"):
        job_from_dict(payload)


def test_unknown_job_kind_raises_wire_error():
    with pytest.raises(WireError, match="unknown job kind"):
        job_from_dict({**GOOD, "kind": "chasse"})


@pytest.mark.parametrize("knob, bad", [
    ("max_steps", -1),
    ("max_facts", -10),
    ("wall_clock", -0.5),
    ("cycle_limit", -3),
    ("max_k", -1),
    ("max_steps", "lots"),
    ("wall_clock", "fast"),
    ("max_facts", True),
])
def test_bad_budgets_raise_wire_error_on_chase_jobs(knob, bad):
    with pytest.raises(WireError, match=knob):
        ChaseJob.from_dict({**GOOD, knob: bad})


@pytest.mark.parametrize("knob, bad", [
    ("max_steps", -1),
    ("depth_limit", -2),
    ("max_k", -1),
    ("optimize", "yes"),
])
def test_bad_budgets_raise_wire_error_on_query_jobs(knob, bad):
    with pytest.raises(WireError, match=knob):
        QueryJob.from_dict({**GOOD, "query": "q(x) <- S(x)", knob: bad})


def test_valid_budgets_still_parse():
    job = ChaseJob.from_dict({**GOOD, "max_steps": 5, "max_facts": 0,
                              "wall_clock": 0.0, "max_k": 0})
    assert (job.max_steps, job.max_facts, job.wall_clock) == (5, 0, 0.0)


def test_duplicate_relation_arities_are_a_structured_error():
    # R used with arity 1 and 2: the schema layer must reject it
    # as a ReproError (which the CLI renders, exit 2), not crash.
    from repro.lang.errors import ReproError
    with pytest.raises(ReproError):
        job_from_dict({"constraints": "R(x) -> R(x, y)",
                       "instance": "R(a)."})


# ----------------------------------------------------------------------
# repro serve: one structured error payload per bad line, loop survives
# ----------------------------------------------------------------------
def test_serve_survives_adversarial_requests(monkeypatch, capsys):
    replies = serve_lines(monkeypatch, capsys, [
        "not json at all",
        json.dumps(["a", "list"]),
        json.dumps({**GOOD, "kind": "bogus"}),
        json.dumps({**GOOD, "max_steps": -5}),
        json.dumps({**GOOD, "query": 17}),
        json.dumps({**GOOD, "name": "ok"}),          # sanity: still serves
        "quit",
    ])
    assert len(replies) == 6
    for reply in replies[:5]:
        assert reply["status"] == "error"
        assert "Traceback" not in reply["failure_reason"]
    assert replies[5]["status"] == "terminated"


def test_serve_negative_budget_error_names_the_knob(monkeypatch, capsys):
    replies = serve_lines(monkeypatch, capsys, [
        json.dumps({**GOOD, "max_facts": -1}), "quit"])
    assert replies[0]["status"] == "error"
    assert "max_facts" in replies[0]["failure_reason"]


# ----------------------------------------------------------------------
# repro batch / repro query: bad spec files exit 2 with a clean error
# ----------------------------------------------------------------------
def write_spec(tmp_path, payload, name="job.json"):
    path = tmp_path / name
    path.write_text(payload if isinstance(payload, str)
                    else json.dumps(payload))
    return str(path)


@pytest.mark.parametrize("payload", [
    "{invalid json",
    json.dumps("just a string"),
    json.dumps({"constraints": "S(x) -> E(x, y)", "instance": "S(a).",
                "kind": "nope"}),
    json.dumps({"constraints": "S(x) -> E(x, y)", "instance": "S(a).",
                "max_steps": -2}),
])
def test_batch_rejects_bad_spec_files_cleanly(tmp_path, capsys, payload):
    path = write_spec(tmp_path, payload)
    assert main(["batch", path, "--workers", "1"]) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "Traceback" not in captured.err + captured.out


def test_query_rejects_chase_spec_without_query_field(tmp_path, capsys):
    path = write_spec(tmp_path, GOOD)
    assert main(["query", path]) == 2
    assert "no 'query' field" in capsys.readouterr().err


def test_query_rejects_negative_depth_limit_spec(tmp_path, capsys):
    path = write_spec(tmp_path, {**GOOD, "query": "q(x) <- S(x)",
                                 "depth_limit": -1})
    assert main(["query", path]) == 2
    captured = capsys.readouterr()
    assert "depth_limit" in captured.err
    assert "Traceback" not in captured.err


def test_executed_adversarial_budget_never_leaks_a_traceback(capsys):
    # Budgets that pass validation but are operationally extreme must
    # come back as chase statuses, not error tracebacks.
    from repro.service.jobs import execute_any
    job = ChaseJob.from_dict({**GOOD, "max_steps": 0})
    result = execute_any(job)
    assert result.status == "exceeded_budget"
    job = ChaseJob.from_dict({**GOOD, "max_facts": 0})
    result = execute_any(job)
    assert result.status == "exceeded_budget"
    assert "Traceback" not in (result.failure_reason or "")
