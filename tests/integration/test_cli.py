"""Direct tests for every ``repro`` CLI subcommand.

``test_viz_cli.py`` covers the DOT output of ``graph``; this module
covers the commands themselves -- exit codes, stdout shape, option
handling -- including the service-layer ``batch`` and ``serve``.
"""

import io
import json

import pytest

from repro.cli import main

TERMINATING = "a1: S(x) -> E(x, y)"
DIVERGENT = "a2: S(x) -> E(x, y), S(y)"


@pytest.fixture
def constraint_file(tmp_path):
    def write(text, name="sigma.txt"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)
    return write


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "instance.txt"
    path.write_text("S(a). S(b). E(a, b).")
    return str(path)


# ----------------------------------------------------------------------
# analyze
# ----------------------------------------------------------------------
def test_analyze_terminating_set(constraint_file, capsys):
    assert main(["analyze", constraint_file(TERMINATING)]) == 0
    out = capsys.readouterr().out
    assert "weakly_acyclic" in out and "True" in out


def test_analyze_divergent_set_exits_nonzero(constraint_file, capsys):
    assert main(["analyze", constraint_file(DIVERGENT)]) == 1
    assert "some sequence terminates : False" in capsys.readouterr().out


def test_analyze_missing_file_is_a_clean_error(capsys):
    assert main(["analyze", "/nonexistent/sigma.txt"]) == 2
    assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# chase
# ----------------------------------------------------------------------
def test_chase_terminating(constraint_file, instance_file, capsys):
    code = main(["chase", constraint_file(TERMINATING),
                 "--instance", instance_file])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("status: terminated")
    assert "E(a, b)" in out


def test_chase_budget_exit_code(constraint_file, instance_file, capsys):
    code = main(["chase", constraint_file(DIVERGENT),
                 "--instance", instance_file, "--max-steps", "20"])
    assert code == 1
    assert "exceeded_budget (20 steps)" in capsys.readouterr().out


def test_chase_with_monitor_and_backend(constraint_file, instance_file,
                                        capsys):
    code = main(["chase", constraint_file(DIVERGENT),
                 "--instance", instance_file, "--cycle-limit", "3",
                 "--backend", "column", "--max-steps", "100000"])
    assert code == 1
    assert "aborted_by_monitor" in capsys.readouterr().out


# ----------------------------------------------------------------------
# graph
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["dep", "prop", "chase", "cchase"])
def test_graph_kinds_emit_dot(constraint_file, capsys, kind):
    code = main(["graph", constraint_file(TERMINATING), "--kind", kind])
    assert code == 0
    assert "digraph" in capsys.readouterr().out


# ----------------------------------------------------------------------
# optimize
# ----------------------------------------------------------------------
def test_optimize_emits_universal_plan(constraint_file, capsys):
    code = main(["optimize", constraint_file("E(x, y) -> S(y)"),
                 "--query", "q(x) <- E(x, y), S(y)"])
    assert code == 0
    assert "universal plan:" in capsys.readouterr().out


def test_optimize_refuses_divergent_sets(constraint_file, capsys):
    code = main(["optimize", constraint_file(DIVERGENT),
                 "--query", "q(x) <- S(x)"])
    assert code == 1
    assert "refused:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# batch
# ----------------------------------------------------------------------
@pytest.fixture
def jobs_dir(tmp_path):
    jobs = tmp_path / "jobs"
    jobs.mkdir()
    (jobs / "fine.json").write_text(json.dumps({
        "constraints": TERMINATING, "instance": "S(a). S(b)."}))
    (jobs / "capped.json").write_text(json.dumps({
        "constraints": DIVERGENT, "instance": "S(a).",
        "max_steps": 30}))
    return jobs


def test_batch_runs_a_directory(jobs_dir, capsys):
    assert main(["batch", str(jobs_dir), "--workers", "2"]) == 0
    captured = capsys.readouterr()
    assert "capped: exceeded_budget after 30 steps" in captured.out
    assert "fine: terminated" in captured.out
    assert "2 jobs, 2 completed" in captured.err


def test_batch_json_output_and_events(jobs_dir, capsys):
    code = main(["batch", str(jobs_dir), "--workers", "1",
                 "--json", "--events", "--progress-every", "10"])
    assert code == 0
    captured = capsys.readouterr()
    payloads = [json.loads(line) for line in
                captured.out.strip().splitlines()]
    assert [p["job"] for p in payloads] == ["capped", "fine"]
    assert all(p["facts"] for p in payloads)
    assert "[queued] fine" in captured.err
    assert "[finished] capped" in captured.err
    # --progress-every surfaces the per-step stream (30-step job).
    assert "[progress] capped" in captured.err


def test_batch_single_file_and_empty_dir(tmp_path, jobs_dir, capsys):
    assert main(["batch", str(jobs_dir / "fine.json")]) == 0
    capsys.readouterr()
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["batch", str(empty)]) == 2
    assert "no *.json job files" in capsys.readouterr().err


def test_batch_exit_code_reflects_failures(tmp_path, capsys):
    jobs = tmp_path / "jobs"
    jobs.mkdir()
    (jobs / "bad.json").write_text(json.dumps({
        "constraints": TERMINATING, "instance": "S(a).",
        "strategy": "bogus"}))
    assert main(["batch", str(jobs)]) == 1
    assert "1 killed/errored" in capsys.readouterr().err


def test_batch_16_mixed_jobs_match_inprocess_execution(tmp_path, capsys):
    """The acceptance scenario, end to end through the CLI: 16 mixed
    workload-family job files, 2 workers, results identical to plain
    sequential in-process execution."""
    from repro.service import ChaseJob, execute_job
    from repro.workloads.batch import mixed_batch_specs
    jobs = tmp_path / "jobs16"
    jobs.mkdir()
    specs = mixed_batch_specs(16, seed=9)
    for index, spec in enumerate(specs):
        (jobs / f"{index:02d}.json").write_text(json.dumps(spec))
    expected = {spec["name"]: execute_job(ChaseJob.from_dict(spec))
                for spec in specs}
    assert main(["batch", str(jobs), "--workers", "2", "--json"]) == 0
    payloads = [json.loads(line) for line in
                capsys.readouterr().out.strip().splitlines()]
    assert [p["job"] for p in payloads] == [s["name"] for s in specs]
    for payload in payloads:
        reference = expected[payload["job"]]
        assert payload["status"] == reference.status
        assert payload["steps"] == reference.steps
        assert payload["facts"] == reference.facts


def test_batch_example_jobs_ship_and_run(capsys):
    from pathlib import Path
    jobs = Path(__file__).resolve().parents[2] / "examples" / "jobs"
    assert main(["batch", str(jobs), "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "divergent_guarded: aborted_by_monitor" in out


# ----------------------------------------------------------------------
# query
# ----------------------------------------------------------------------
QUERY_SPEC = {"constraints": TERMINATING, "instance": "E(a, b). S(a).",
              "query": "q(x) <- S(x), E(x, y)"}


def test_query_spec_file(tmp_path, capsys):
    spec = tmp_path / "q.json"
    spec.write_text(json.dumps(QUERY_SPEC))
    assert main(["query", str(spec)]) == 0
    captured = capsys.readouterr()
    assert "q: terminated" in captured.out
    assert "(a)" in captured.out
    assert "1 completed" in captured.err


def test_query_inline_constraints(constraint_file, instance_file, capsys):
    code = main(["query", constraint_file(TERMINATING),
                 "--instance", instance_file,
                 "--query", "q(x, y) <- E(x, y)"])
    assert code == 0
    out = capsys.readouterr().out
    assert "(a, b)" in out and "evaluated:" in out


def test_query_inline_requires_instance_and_query(constraint_file, capsys):
    assert main(["query", constraint_file(TERMINATING)]) == 2
    assert "--instance and --query" in capsys.readouterr().err


def test_query_rejects_chase_specs(jobs_dir, capsys):
    assert main(["query", str(jobs_dir)]) == 2
    assert "not query-job specs" in capsys.readouterr().err


def test_query_json_output_and_truncation(tmp_path, capsys):
    spec = tmp_path / "divergent.json"
    spec.write_text(json.dumps({
        "constraints": DIVERGENT, "instance": "S(a). E(a, b). S(b).",
        "query": "q(u) <- S(u), E(u, v)", "max_steps": 150}))
    assert main(["query", str(spec), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out.strip())
    assert payload["status"] == "exceeded_budget"
    assert payload["truncated"] is True
    assert payload["answers"] == [[["c", "a"]], [["c", "b"]]]


def test_query_example_specs_ship_and_run(capsys):
    """The acceptance smoke: the shipped examples/queries specs run
    end to end (also exercised by `make test-service` in CI)."""
    from pathlib import Path
    queries = Path(__file__).resolve().parents[2] / "examples" / "queries"
    assert main(["query", str(queries), "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "stratified_only: terminated" in out
    assert "depth_bounded_guarded: exceeded_budget" in out
    assert "truncated-prefix answers" in out


def test_batch_accepts_query_specs(tmp_path, capsys):
    """Query specs ride along in a plain batch directory."""
    jobs = tmp_path / "mixed"
    jobs.mkdir()
    (jobs / "a_chase.json").write_text(json.dumps({
        "constraints": TERMINATING, "instance": "S(a). S(b)."}))
    (jobs / "b_query.json").write_text(json.dumps(QUERY_SPEC))
    assert main(["batch", str(jobs)]) == 0
    out = capsys.readouterr().out
    assert "a_chase: terminated" in out
    assert "b_query: terminated" in out and "answers" in out


def test_serve_answers_query_requests(monkeypatch, capsys):
    request = json.dumps(dict(QUERY_SPEC, name="r1"))
    replies = serve_lines(monkeypatch, capsys, [request, request, "quit"])
    assert len(replies) == 2
    assert replies[0]["answers"] == [[["c", "a"]]]
    assert replies[1]["cached"] is True
    assert replies[1]["answers"] == replies[0]["answers"]


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def serve_lines(monkeypatch, capsys, lines, argv=()):
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
    assert main(["serve", *argv]) == 0
    return [json.loads(line) for line in
            capsys.readouterr().out.strip().splitlines()]


def test_serve_answers_jobs_line_by_line(monkeypatch, capsys):
    request = json.dumps({"name": "r1", "constraints": TERMINATING,
                          "instance": "S(a)."})
    replies = serve_lines(monkeypatch, capsys,
                          [request, "", request, "quit"])
    assert len(replies) == 2
    assert replies[0]["status"] == "terminated"
    assert replies[0]["cached"] is False
    # Same fingerprint on the second request: served from cache.
    assert replies[1]["cached"] is True
    assert replies[1]["facts"] == replies[0]["facts"]


def test_serve_reports_bad_requests_inline(monkeypatch, capsys):
    replies = serve_lines(monkeypatch, capsys, [
        '{"constraints": "S(x) ->"}',            # parse error
        "not json",                              # not even JSON
        '{"constraints": 5, "instance": "S(a)."}',      # wrong type
        '{"constraints": "S(x) -> T(x)", "instance": {}}',  # bad wire
        json.dumps({"constraints": TERMINATING,  # service still alive
                    "instance": "S(a)."}),
    ])
    assert len(replies) == 5
    assert [reply["status"] for reply in replies] \
        == ["error"] * 4 + ["terminated"]


# ----------------------------------------------------------------------
# observability: --metrics / --trace / stats
# ----------------------------------------------------------------------
@pytest.fixture
def fresh_registry():
    from repro.obs import metrics
    metrics.reset()
    return metrics


def test_chase_metrics_and_trace(constraint_file, instance_file, capsys,
                                 tmp_path, fresh_registry):
    snap_file = tmp_path / "snap.json"
    trace_file = tmp_path / "trace.ndjson"
    code = main(["chase", constraint_file(TERMINATING),
                 "--instance", instance_file,
                 "--metrics", "--metrics-json", str(snap_file),
                 "--trace", str(trace_file)])
    assert code == 0
    err = capsys.readouterr().err
    assert "chase.runs 1" in err
    snap = json.loads(snap_file.read_text())
    assert snap["counters"]["chase.runs"] == 1
    assert snap["counters"]["chase.steps"] >= 1
    # One record per span; each line is a self-contained JSON object.
    records = [json.loads(line) for line in
               trace_file.read_text().splitlines()]
    assert {r["name"] for r in records} >= {"chase", "step"}
    # The flags are per-invocation: the registry is disabled again.
    assert not fresh_registry.enabled()


def test_chase_trace_sampling_thins_step_spans(constraint_file,
                                               instance_file, tmp_path,
                                               capsys, fresh_registry):
    def spans_with_sample(n):
        trace_file = tmp_path / f"trace{n}.ndjson"
        assert main(["chase", constraint_file(TERMINATING),
                     "--instance", instance_file,
                     "--trace", str(trace_file),
                     "--trace-sample", str(n)]) == 0
        capsys.readouterr()
        return [json.loads(line)["name"] for line in
                trace_file.read_text().splitlines()]
    full = spans_with_sample(1)
    thinned = spans_with_sample(1000)
    # Sampling drops step-granularity spans, never the run span.
    assert "chase" in thinned
    assert full.count("step") > thinned.count("step") or \
        full.count("step") <= 1


def test_batch_metrics_aggregate_across_workers(jobs_dir, capsys,
                                                tmp_path,
                                                fresh_registry):
    snap_file = tmp_path / "snap.json"
    trace_file = tmp_path / "trace.ndjson"
    assert main(["batch", str(jobs_dir), "--workers", "2",
                 "--metrics-json", str(snap_file),
                 "--trace", str(trace_file)]) == 0
    capsys.readouterr()
    snap = json.loads(snap_file.read_text())
    # Fleet-wide totals: both worker processes' runs are merged.
    assert snap["counters"]["chase.runs"] == 2
    assert snap["counters"]["pool.jobs_dispatched"] == 2
    assert snap["histograms"]["chase.steps_per_run"]["count"] == 2
    # The worker traces replayed into the parent's NDJSON file.
    records = [json.loads(line) for line in
               trace_file.read_text().splitlines()]
    assert {r["name"] for r in records} >= {"job", "chase"}
    assert len({r["trace"] for r in records}) == 2


def test_batch_events_carry_fingerprint_and_timestamp(jobs_dir,
                                                      capsys):
    assert main(["batch", str(jobs_dir), "--workers", "1",
                 "--events"]) == 0
    err = capsys.readouterr().err
    started = [line for line in err.splitlines()
               if line.startswith("[started]")]
    assert started
    assert all(" fp=" in line and " t=" in line for line in started)


def test_serve_stats_request(monkeypatch, capsys, fresh_registry):
    request = json.dumps({"name": "s1", "constraints": TERMINATING,
                          "instance": "S(a)."})
    replies = serve_lines(monkeypatch, capsys,
                          [request, '{"kind": "stats"}', "quit"],
                          argv=["--metrics"])
    assert len(replies) == 2
    stats = replies[1]
    assert stats["kind"] == "stats"
    assert stats["metrics"]["counters"]["chase.runs"] == 1
    assert stats["cache"]["results"]["misses"] == 1


def test_stats_renders_snapshot_file(tmp_path, capsys):
    snap_file = tmp_path / "snap.json"
    snap_file.write_text(json.dumps(
        {"counters": {"chase.runs": 3}, "gauges": {},
         "histograms": {}}))
    assert main(["stats", str(snap_file)]) == 0
    assert "chase.runs 3" in capsys.readouterr().out
    assert main(["stats", str(snap_file), "--prometheus"]) == 0
    assert "repro_chase_runs 3" in capsys.readouterr().out


def test_stats_reads_a_serve_reply_stream(tmp_path, monkeypatch,
                                          capsys):
    stream = tmp_path / "serve.out"
    stream.write_text(
        json.dumps({"status": "terminated", "facts": 2}) + "\n"
        + json.dumps({"kind": "stats",
                      "metrics": {"counters": {"chase.runs": 5}},
                      "cache": {}}) + "\n")
    assert main(["stats", str(stream)]) == 0
    assert "chase.runs 5" in capsys.readouterr().out
    # "-" reads stdin, the piping form.
    monkeypatch.setattr("sys.stdin", io.StringIO(
        stream.read_text()))
    assert main(["stats", "-"]) == 0
    assert "chase.runs 5" in capsys.readouterr().out


def test_stats_rejects_non_snapshots(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]")
    assert main(["stats", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err
