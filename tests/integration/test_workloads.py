"""Workload-package integrity tests."""

import pytest

from repro.lang.constraints import Constraint
from repro.workloads.families import (bounded_null_cascade, chain_instance,
                                      cycle_instance, full_tgd_chain,
                                      prop11_family, sigma_family,
                                      special_nodes_instance, star_instance)
from repro.workloads.generators import (random_constraint_set,
                                        random_full_tgds,
                                        random_graph_instance,
                                        random_instance, random_schema)
from repro.workloads.paper import NAMED_SETS
from repro.workloads.turing import (compile_machine, sample_halting_machine)


class TestPaperCatalog:
    def test_every_named_set_parses(self):
        for name, (factory, description) in NAMED_SETS.items():
            sigma = factory()
            assert sigma, name
            assert all(isinstance(c, Constraint) for c in sigma)
            assert description

    def test_factories_return_fresh_objects(self):
        factory = NAMED_SETS["example4"][0]
        assert factory() == factory()
        assert factory() is not factory()

    def test_labels_unique_within_sets(self):
        for name, (factory, _d) in NAMED_SETS.items():
            labels = [c.label for c in factory()]
            assert len(labels) == len(set(labels)), name


class TestFamilies:
    def test_sigma_family_arities(self):
        for m in (2, 3, 5):
            (alpha,) = sigma_family(m)
            assert alpha.body[1].arity == m
            assert len(alpha.existential_variables()) == 1
        with pytest.raises(ValueError):
            sigma_family(1)

    def test_sigma2_is_figure2(self):
        from repro.workloads.paper import figure2
        (alpha,) = sigma_family(2)
        (fig2,) = figure2()
        # same shape up to relation/variable names: both are binary
        assert alpha.body[1].arity == 2
        assert len(fig2.body) == len(alpha.body)

    def test_prop11_family_shapes(self):
        sigma, inst = prop11_family(4)
        assert len(inst) == 5  # 4 S-facts + 1 R-fact
        assert len(sigma) == 1
        with pytest.raises(ValueError):
            prop11_family(1)

    def test_full_tgd_chain_is_weakly_acyclic(self):
        from repro.termination import is_weakly_acyclic
        assert is_weakly_acyclic(full_tgd_chain(5))

    def test_bounded_cascade_is_safe(self):
        from repro.termination import is_safe
        assert is_safe(bounded_null_cascade(4))

    def test_instances(self):
        assert len(chain_instance(5)) == 5
        assert len(cycle_instance(5)) == 5
        assert len(star_instance(5)) == 5
        inst = special_nodes_instance(6, spacing=2)
        assert len(inst.facts("S")) == 4
        assert len(inst.facts("E")) == 6


class TestGenerators:
    def test_deterministic_by_seed(self):
        assert random_constraint_set(7, 4) == random_constraint_set(7, 4)
        assert random_constraint_set(7, 4) != random_constraint_set(8, 4)

    def test_sizes_respected(self):
        assert len(random_constraint_set(1, 6)) == 6

    def test_full_tgds_have_no_existentials(self):
        for constraint in random_full_tgds(3, 5):
            assert constraint.is_tgd and constraint.is_full

    def test_tgds_well_formed(self):
        for seed in range(5):
            for constraint in random_constraint_set(seed, 5):
                if constraint.is_tgd:
                    frontier = constraint.frontier_variables()
                    assert frontier <= constraint.body_variables()

    def test_graph_instances_nonempty(self):
        for seed in range(3):
            inst = random_graph_instance(seed, 5)
            assert len(inst) >= 1

    def test_random_instance_respects_schema(self, rng):
        schema = random_schema(rng, 3, 3)
        inst = random_instance(0, schema, 10)
        for fact in inst:
            assert fact.arity == schema.arity(fact.relation)


class TestTuringCompilation:
    def test_compilation_deterministic(self):
        machine = sample_halting_machine()
        first = compile_machine(machine)["sigma"]
        second = compile_machine(machine)["sigma"]
        assert first == second

    def test_interpreter_matches_transition_count(self):
        machine = sample_halting_machine()
        assert len(machine.run()) == len(machine.transitions)
