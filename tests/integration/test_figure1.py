"""Integration: the complete Figure 1 landscape.

Every strict inclusion and incomparability of the paper's Figure 1 is
witnessed by a named constraint set, and the classes behave as the
theorems promise on actual chase runs.
"""

import pytest

from repro.chase import chase, ChaseStatus, RoundRobinStrategy
from repro.termination.report import analyze
from repro.workloads.paper import (example2_gamma, example4, example8_beta,
                                   example13, figure2, intro_alpha1,
                                   intro_alpha2, theorem4_safe_not_stratified)


def classify(sigma, max_k=3):
    return analyze(sigma, max_k=max_k)


class TestStrictInclusions:
    def test_wa_strictly_inside_safe(self):
        # WA example is safe ...
        r = classify(intro_alpha1(), max_k=2)
        assert r.weakly_acyclic and r.safe
        # ... and Example 9 separates: safe \ WA is non-empty
        r = classify(example8_beta(), max_k=2)
        assert r.safe and not r.weakly_acyclic

    def test_safe_strictly_inside_inductively_restricted(self):
        r = classify(example13(), max_k=2)
        assert r.inductively_restricted and not r.safe

    def test_ir_strictly_inside_t3(self):
        r = classify(figure2(), max_k=3)
        assert not r.inductively_restricted
        assert r.t_hierarchy_level == 3

    def test_wa_strictly_inside_stratification(self):
        r = classify(example2_gamma(), max_k=2)
        assert r.stratified and not r.weakly_acyclic

    def test_c_stratified_strictly_inside_stratified(self):
        r = classify(example4(), max_k=2)
        assert r.stratified and not r.c_stratified


class TestIncomparabilities:
    def test_safe_vs_c_stratified(self):
        """Theorem 4c both directions."""
        r = classify(theorem4_safe_not_stratified(), max_k=2)
        assert r.safe and not r.stratified and not r.c_stratified
        r = classify(example2_gamma(), max_k=2)
        assert r.c_stratified and not r.safe

    def test_stratified_vs_inductively_restricted(self):
        """Proposition 2b/2c both directions."""
        r = classify(example4(), max_k=2)
        assert r.stratified and not r.inductively_restricted
        r = classify(example13(), max_k=2)
        assert r.inductively_restricted and not r.stratified


class TestOperationalMeaning:
    """The classes' termination promises hold on real chase runs."""

    def test_outside_everything_diverges(self):
        r = classify(intro_alpha2(), max_k=2)
        assert not r.guarantees_some_sequence
        from repro.lang.parser import parse_instance
        result = chase(parse_instance("S(a)"), intro_alpha2(), max_steps=100)
        assert result.status is ChaseStatus.EXCEEDED_BUDGET

    def test_stratified_only_needs_theorem2_order(self):
        from repro.workloads.paper import example4_instance
        sigma = example4()
        report = classify(sigma, max_k=2)
        naive = chase(example4_instance(), sigma,
                      strategy=RoundRobinStrategy(), max_steps=300)
        assert naive.status is ChaseStatus.EXCEEDED_BUDGET
        strategy = report.recommended_strategy()
        assert strategy is not None
        guided = chase(example4_instance(), sigma, strategy=strategy,
                       max_steps=300)
        assert guided.terminated

    @pytest.mark.parametrize("factory", [
        intro_alpha1, example8_beta, example13, figure2])
    def test_all_sequence_classes_terminate(self, factory):
        """Theorems 3/5/6/7: sets in WA/safe/IR/T[3] terminate under
        the default strategy on their natural instances."""
        from repro.workloads.generators import random_graph_instance
        from repro.lang.atoms import Atom
        from repro.lang.instance import Instance
        sigma = factory()
        relations = {a.relation for c in sigma
                     for a in tuple(c.body) + tuple(getattr(c, "head", ()))}
        for seed in range(2):
            base = random_graph_instance(seed, 4, edge_probability=0.4)
            facts = []
            for fact in base:
                if fact.relation == "E" and "R" in relations:
                    facts.append(Atom("R", (fact.args[0], fact.args[1],
                                            fact.args[0])))
                if fact.relation in relations:
                    facts.append(fact)
            if not facts:
                continue
            result = chase(Instance(facts), sigma, max_steps=20_000)
            assert result.terminated, factory.__name__
