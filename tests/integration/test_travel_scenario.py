"""Integration: the full Section 4 travel-agency narrative."""

from repro.chase import chase
from repro.cq.containment import equivalent
from repro.cq.optimize import optimize, universal_plan
from repro.datadep.irrelevance import terminates_statically
from repro.datadep.monitored_chase import monitored_chase
from repro.lang.errors import NonTerminationBudget
from repro.lang.parser import parse_instance, parse_query
from repro.termination.report import analyze
from repro.workloads.paper import (figure9, query_q1, query_q2,
                                   query_q2_double_prime)

import pytest


class TestNarrative:
    def test_no_data_independent_guarantee(self):
        """Step 1: Figure 9's constraints fall outside every class."""
        report = analyze(figure9(), max_k=2)
        assert not report.guarantees_some_sequence

    def test_q1_hopeless_q2_fine(self):
        """Step 2: the data-dependent analysis separates the queries."""
        sigma = figure9()
        frozen1, _ = query_q1().freeze()
        frozen2, _ = query_q2().freeze()
        assert terminates_statically(frozen1, sigma) is None
        assert terminates_statically(frozen2, sigma) == 2

    def test_q1_dynamic_guard_fires(self):
        """Step 3: the monitor catches q1's divergence quickly."""
        sigma = figure9()
        frozen1, _ = query_q1().freeze()
        result = monitored_chase(frozen1, sigma, 2, max_steps=10_000)
        assert result.aborted
        assert result.result.length < 25

    def test_q2_full_pipeline_yields_cheaper_query(self):
        """Step 4: chase q2, minimize, obtain the 3-atom rewriting that
        drops the rail back-join."""
        sigma = figure9()
        result = optimize(query_q2(), sigma, cycle_limit=3)
        assert len(result.universal_plan.body) == 6
        best = result.minimal_rewritings()
        assert best and len(best[0].body) == 3
        assert any(equivalent(q, query_q2_double_prime()) for q in best)

    def test_rewriting_answers_match_on_data(self):
        """Sanity: q2 and its rewriting agree on a concrete database
        satisfying the constraints."""
        db = parse_instance("""
            rail(c1, berlin, 100). rail(berlin, c1, 100).
            fly(berlin, paris, 500). fly(paris, berlin, 500).
            hasAirport(berlin). hasAirport(paris)
        """)
        sigma = figure9()
        chased = chase(db, sigma, max_steps=2000)
        assert chased.terminated
        q2 = query_q2()
        rewriting = query_q2_double_prime()
        assert (q2.evaluate(chased.instance)
                == rewriting.evaluate(chased.instance))
        paris = {t[0] for t in q2.evaluate(chased.instance)}
        assert {str(v) for v in paris} == {"paris"}
