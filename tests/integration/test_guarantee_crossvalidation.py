"""Cross-validation: the analyzer's promises against real chase runs.

The strongest end-to-end property test in the suite: on random
constraint sets, whenever `analyze` claims a termination guarantee,
the chase must actually terminate (on random instances, under multiple
strategies); conversely a completed divergence probe must never be
possible for a guaranteed set.
"""

from hypothesis import given, settings

from repro.chase import chase, ChaseStatus, OrderedStrategy, RandomStrategy
from repro.termination.report import analyze
from repro.workloads.generators import random_graph_instance

from tests.conftest import graph_tgd_sets


class TestGuaranteesHold:
    @given(graph_tgd_sets(max_size=2))
    @settings(max_examples=20, deadline=None)
    def test_all_sequence_guarantees(self, sigma):
        """Theorems 3/5/6/7: a guaranteed set terminates under any
        strategy on random instances."""
        report = analyze(sigma, max_k=2)
        if not report.guarantees_all_sequences:
            return
        for seed in range(2):
            inst = random_graph_instance(seed, 4)
            for strategy in (OrderedStrategy(), RandomStrategy(seed=seed)):
                result = chase(inst, sigma, strategy=strategy,
                               max_steps=30_000)
                assert result.status is not ChaseStatus.EXCEEDED_BUDGET, (
                    "guaranteed set exceeded its budget:\n"
                    + "\n".join(str(c) for c in sigma))

    @given(graph_tgd_sets(max_size=2))
    @settings(max_examples=15, deadline=None)
    def test_theorem1_some_sequence(self, sigma):
        """Theorem 1/2: a (merely) stratified set terminates under the
        stratum order."""
        report = analyze(sigma, max_k=2)
        if not report.guarantees_some_sequence:
            return
        strategy = report.recommended_strategy()
        for seed in range(2):
            inst = random_graph_instance(seed, 3)
            result = chase(
                inst, sigma,
                strategy=strategy
                if strategy is not None else OrderedStrategy(),
                max_steps=30_000)
            assert result.status is not ChaseStatus.EXCEEDED_BUDGET
            # strategies are stateful: rebuild for the next instance
            strategy = report.recommended_strategy()
