"""HTTP-level adversarial inputs against the gateway.

The transport-layer extension of ``test_adversarial_specs.py``: the
wire itself is now hostile.  Truncated bodies, oversized payloads, bad
chunked framing, garbage request lines, wrong methods, unknown paths
-- the gateway must answer every one with a *structured* 4xx JSON body
(``{"status": "error", "error": <code>, ...}``), never a traceback,
never a hang, and must keep serving well-formed requests on the very
next connection.

Self-contained on purpose (no helper imports across test packages):
the raw-socket control these cases need is the whole point.
"""

import asyncio
import contextlib
import json

import pytest

from repro.service import BatchScheduler, ServiceCache
from repro.service.dispatch import ServiceSession
from repro.service.http import HttpGateway

GOOD = {"constraints": "S(x) -> E(x, y)", "instance": "S(a)."}


@contextlib.asynccontextmanager
async def gateway(**kw):
    scheduler = BatchScheduler(workers=1,
                               cache=ServiceCache(result_size=64))
    gw = HttpGateway(ServiceSession(scheduler), port=0,
                     header_timeout=kw.pop("header_timeout", 0.5), **kw)
    await gw.start()
    try:
        yield gw
    finally:
        await gw.shutdown()
        scheduler.close()


async def exchange(port, payload: bytes, timeout=10.0,
                   eof_after=True) -> bytes:
    """Send raw bytes, return whatever one framed response the server
    produces (empty bytes if it just closes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        if eof_after:
            writer.write_eof()
        return await asyncio.wait_for(_read_one_response(reader),
                                      timeout=timeout)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def _read_one_response(reader) -> bytes:
    head = b""
    while b"\r\n\r\n" not in head:
        block = await reader.read(4096)
        if not block:
            return head
        head += block
    header_bytes, _, rest = head.partition(b"\r\n\r\n")
    length = 0
    for line in header_bytes.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        block = await reader.read(4096)
        if not block:
            break
        rest += block
    return header_bytes + b"\r\n\r\n" + rest


def status_and_error(raw: bytes):
    """-> (http_status, error_payload_dict_or_None); asserts the body,
    when JSON, is the structured error contract without tracebacks."""
    assert raw, "server closed without responding"
    status = int(raw.split(b" ", 2)[1])
    body = raw.partition(b"\r\n\r\n")[2]
    payload = json.loads(body) if body else None
    if payload is not None and payload.get("status") == "error":
        assert isinstance(payload["error"], str)
        assert "Traceback" not in payload["failure_reason"]
    assert b"Traceback" not in raw
    return status, payload


def plain(method="POST", path="/jobs", body=b"", extra="") -> bytes:
    return (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n{extra}"
            f"Connection: close\r\n\r\n").encode() + body


async def still_serving(port) -> None:
    """The gateway must answer a well-formed request after the abuse."""
    raw = await exchange(port, plain(
        body=json.dumps({**GOOD, "name": "sanity"}).encode(),
        path="/jobs?wait=1"), timeout=30.0, eof_after=False)
    status, payload = status_and_error(raw)
    assert status == 200
    assert payload["result"]["status"] == "terminated"


def test_truncated_body_is_a_structured_400():
    async def main():
        async with gateway() as gw:
            # Content-Length promises 500 bytes, the client sends 20
            # and shuts its write side: structured 400, no hang.
            head = (b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 500\r\n\r\n")
            raw = await exchange(gw.port, head + b'{"constraints": "x')
            status, payload = status_and_error(raw)
            assert status in (400, 408)
            assert payload["error"] in ("truncated_body", "timeout")
            await still_serving(gw.port)
    asyncio.run(main())


def test_truncated_headers_and_garbage_request_lines():
    async def main():
        async with gateway() as gw:
            for raw_bytes in (
                    b"POST /jobs HTTP/1.1\r\nContent-Len",   # cut header
                    b"\x00\xff\xfe garbage\r\n\r\n",         # binary junk
                    b"GET\r\n\r\n",                          # no target
                    b"GET / SPDY/3\r\n\r\n",                 # bad version
            ):
                raw = await exchange(gw.port, raw_bytes)
                if raw:                       # a response at all ->
                    status, _ = status_and_error(raw)    # structured 4xx
                    assert 400 <= status < 500
            await still_serving(gw.port)
    asyncio.run(main())


def test_oversized_payload_is_413_without_reading_it():
    async def main():
        async with gateway(max_body=1024) as gw:
            # The declared length alone triggers the rejection -- the
            # server must not buffer 100 MB to find out.
            head = (b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 104857600\r\n\r\n")
            raw = await exchange(gw.port, head + b"x" * 64,
                                 eof_after=False)
            status, payload = status_and_error(raw)
            assert status == 413
            assert payload["error"] == "payload_too_large"
            await still_serving(gw.port)
    asyncio.run(main())


def test_oversized_chunked_body_is_413():
    async def main():
        async with gateway(max_body=1024) as gw:
            head = (b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n")
            chunk = b"800\r\n" + b"y" * 0x800 + b"\r\n"
            raw = await exchange(gw.port, head + chunk + chunk,
                                 eof_after=False)
            status, payload = status_and_error(raw)
            assert status == 413
            assert payload["error"] == "payload_too_large"
            await still_serving(gw.port)
    asyncio.run(main())


@pytest.mark.parametrize("bad_chunks, expected_code", [
    (b"zz\r\nhello\r\n0\r\n\r\n", "bad_chunking"),     # non-hex size
    (b"5\r\nhelloXX0\r\n\r\n", "bad_chunking"),        # missing CRLF
    (b"5\r\nhel", "truncated_body"),                   # cut mid-chunk
])
def test_bad_chunked_framing_is_a_structured_400(bad_chunks,
                                                 expected_code):
    async def main():
        async with gateway() as gw:
            head = (b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n")
            raw = await exchange(gw.port, head + bad_chunks)
            status, payload = status_and_error(raw)
            assert status in (400, 408)
            assert payload["error"] in (expected_code, "timeout")
            await still_serving(gw.port)
    asyncio.run(main())


def test_wellformed_chunked_request_still_works():
    """The flip side of the chunking fuzz: correct chunked framing is
    accepted and served."""
    async def main():
        async with gateway() as gw:
            body = json.dumps({**GOOD, "name": "chunky"}).encode()
            half = len(body) // 2
            framed = (f"{half:x}\r\n".encode() + body[:half] + b"\r\n"
                      + f"{len(body) - half:x}\r\n".encode()
                      + body[half:] + b"\r\n0\r\n\r\n")
            raw = await exchange(
                gw.port,
                b"POST /jobs?wait=1 HTTP/1.1\r\nHost: t\r\n"
                b"Transfer-Encoding: chunked\r\nConnection: close\r\n"
                b"\r\n" + framed,
                timeout=30.0, eof_after=False)
            status, payload = status_and_error(raw)
            assert status == 200
            assert payload["result"]["status"] == "terminated"
    asyncio.run(main())


def test_unknown_paths_methods_and_bodies():
    async def main():
        async with gateway() as gw:
            cases = [
                (plain(path="/../../etc/passwd"), 404),
                (plain(method="DELETE", path="/jobs"), 405),
                (plain(method="PUT", path="/stats"), 405),
                (plain(body=b"\xde\xad\xbe\xef"), 400),   # binary body
                (plain(body=b'"just a string"'), 400),    # non-object
                (plain(body=b"[1, 2, 3]"), 400),          # array
                (plain(body=json.dumps(
                    {**GOOD, "kind": "bogus"}).encode()), 400),
            ]
            for raw_bytes, expected in cases:
                raw = await exchange(gw.port, raw_bytes, eof_after=False)
                status, _ = status_and_error(raw)
                assert status == expected, raw_bytes[:40]
            await still_serving(gw.port)
    asyncio.run(main())


def test_header_flood_is_bounded():
    async def main():
        async with gateway() as gw:
            flood = b"GET /stats HTTP/1.1\r\nHost: t\r\n" + \
                b"".join(b"X-Flood-%d: y\r\n" % i for i in range(500))
            raw = await exchange(gw.port, flood + b"\r\n")
            status, payload = status_and_error(raw)
            assert status == 431
            assert payload["error"] == "oversized_header"
            await still_serving(gw.port)
    asyncio.run(main())


def test_slowloris_connection_times_out_without_blocking_others():
    async def main():
        async with gateway(header_timeout=0.3) as gw:
            # A client that sends half a request line and stalls gets
            # 408-and-closed; a concurrent honest client is served.
            async def stall():
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gw.port)
                try:
                    writer.write(b"GET /sta")
                    await writer.drain()
                    return await asyncio.wait_for(reader.read(),
                                                  timeout=10.0)
                finally:
                    writer.close()
                    with contextlib.suppress(Exception):
                        await writer.wait_closed()

            stalled, _ = await asyncio.gather(stall(),
                                              still_serving(gw.port))
            if stalled:                      # the 408 reached the client
                status, payload = status_and_error(stalled)
                assert status == 408
                assert payload["error"] == "timeout"
    asyncio.run(main())
