"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.lang.atoms import Atom
from repro.lang.constraints import TGD
from repro.lang.instance import Instance
from repro.lang.terms import Constant, Variable


# ----------------------------------------------------------------------
# hypothesis strategies over the graph schema S(n), E(src, dst)
# ----------------------------------------------------------------------
_VARIABLES = [Variable(name) for name in ("x", "y", "z", "u", "v")]
_EVARS = [Variable(name) for name in ("e1", "e2")]
_CONSTANTS = [Constant(name) for name in ("a", "b", "c", "d")]


@st.composite
def graph_atoms(draw, pool):
    """A random S/E atom over the given term pool."""
    if draw(st.booleans()):
        return Atom("S", (draw(st.sampled_from(pool)),))
    return Atom("E", (draw(st.sampled_from(pool)),
                      draw(st.sampled_from(pool))))


@st.composite
def graph_instances(draw):
    """A random small instance over constants."""
    n_facts = draw(st.integers(min_value=1, max_value=8))
    facts = [draw(graph_atoms(_CONSTANTS)) for _ in range(n_facts)]
    return Instance(facts)


@st.composite
def graph_tgds(draw, allow_existential=True):
    """A random well-formed TGD over the graph schema."""
    n_body = draw(st.integers(min_value=1, max_value=3))
    body = [draw(graph_atoms(_VARIABLES)) for _ in range(n_body)]
    body_vars = sorted({v for atom in body for v in atom.variables()},
                       key=lambda v: v.name)
    head_pool = list(body_vars)
    if allow_existential and draw(st.booleans()):
        head_pool += _EVARS[:draw(st.integers(min_value=1, max_value=2))]
    n_head = draw(st.integers(min_value=1, max_value=2))
    head = [draw(graph_atoms(head_pool)) for _ in range(n_head)]
    return TGD(body, head)


@st.composite
def graph_tgd_sets(draw, max_size=3, allow_existential=True):
    size = draw(st.integers(min_value=1, max_value=max_size))
    return [draw(graph_tgds(allow_existential=allow_existential))
            for _ in range(size)]


@pytest.fixture
def rng():
    return random.Random(20090617)


def pytest_collection_modifyitems(items):
    """Everything not explicitly slow or fuzz is tier-1 by definition,
    so `-m tier1` selects exactly the fast deterministic suite."""
    for item in items:
        if ("slow" not in item.keywords and "fuzz" not in item.keywords):
            item.add_marker(pytest.mark.tier1)
