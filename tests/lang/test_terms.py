"""Unit tests for terms: identity, immutability, null factories."""

import pytest

from repro.lang.terms import (Constant, Null, NullFactory, Variable,
                              fresh_null)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant("1")

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Constant("a").value = "b"

    def test_kind_flags(self):
        c = Constant("a")
        assert c.is_constant and not c.is_null and not c.is_variable

    def test_str(self):
        assert str(Constant("paris")) == "paris"


class TestNull:
    def test_equality_by_label(self):
        assert Null(3) == Null(3)
        assert Null(3) != Null(4)

    def test_disjoint_from_constants(self):
        assert Null(1) != Constant(1)

    def test_kind_flags(self):
        n = Null(1)
        assert n.is_null and not n.is_constant and not n.is_variable

    def test_str(self):
        assert str(Null(7)) == "?n7"


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_kind_flags(self):
        v = Variable("x")
        assert v.is_variable and not v.is_constant and not v.is_null


class TestNullFactory:
    def test_fresh_nulls_distinct(self):
        factory = NullFactory()
        nulls = [factory.fresh() for _ in range(100)]
        assert len(set(nulls)) == 100

    def test_reset(self):
        factory = NullFactory()
        first = factory.fresh()
        factory.reset()
        assert factory.fresh() == first

    def test_independent_factories(self):
        f1, f2 = NullFactory(), NullFactory()
        assert f1.fresh() == f2.fresh()  # same labels, same nulls

    def test_module_level_fresh(self):
        assert fresh_null() != fresh_null()

    def test_start_offset(self):
        factory = NullFactory(start=50)
        assert factory.fresh() == Null(50)

    def test_advance_past_skips_taken_labels(self):
        factory = NullFactory()
        factory.advance_past(7)
        assert factory.fresh() == Null(8)

    def test_advance_past_is_monotone(self):
        factory = NullFactory(start=10)
        factory.advance_past(3)  # already ahead: no-op
        assert factory.fresh() == Null(10)
