"""Unit tests for schemas."""

import pytest

from repro.lang.atoms import Atom, Position
from repro.lang.errors import SchemaError
from repro.lang.schema import Schema
from repro.lang.terms import Constant


class TestSchema:
    def test_arity_lookup(self):
        schema = Schema({"E": 2, "S": 1})
        assert schema.arity("E") == 2
        with pytest.raises(SchemaError):
            schema.arity("T")

    def test_arity_conflict(self):
        schema = Schema({"E": 2})
        with pytest.raises(SchemaError):
            schema.add_relation("E", 3)

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"P": 0})

    def test_positions_sorted(self):
        schema = Schema({"E": 2, "S": 1})
        assert schema.positions() == [Position("E", 1), Position("E", 2),
                                      Position("S", 1)]

    def test_validate_atom(self):
        schema = Schema({"E": 2})
        schema.validate_atom(Atom("E", (Constant("a"), Constant("b"))))
        with pytest.raises(SchemaError):
            schema.validate_atom(Atom("E", (Constant("a"),)))
        with pytest.raises(SchemaError):
            schema.validate_atom(Atom("X", (Constant("a"),)))

    def test_infer(self):
        schema = Schema.infer([Atom("E", (Constant("a"), Constant("b"))),
                               Atom("S", (Constant("a"),))])
        assert schema.relations() == {"E": 2, "S": 1}

    def test_merged(self):
        merged = Schema({"E": 2}).merged(Schema({"S": 1}))
        assert "E" in merged and "S" in merged
        with pytest.raises(SchemaError):
            Schema({"E": 2}).merged(Schema({"E": 1}))

    def test_max_arity(self):
        assert Schema({"E": 2, "T": 4}).max_arity() == 4
        assert Schema().max_arity() == 0

    def test_iteration_sorted(self):
        assert list(Schema({"Z": 1, "A": 2})) == ["A", "Z"]
