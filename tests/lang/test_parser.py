"""Parser tests, including hypothesis round-trips."""

import pytest
from hypothesis import given

from repro.lang.constraints import EGD, TGD
from repro.lang.errors import ParseError
from repro.lang.parser import (parse_atoms, parse_constraint,
                               parse_constraints, parse_instance,
                               parse_query, render_constraints)
from repro.lang.terms import Constant, Null, Variable

from tests.conftest import graph_tgd_sets


class TestConstraintParsing:
    def test_simple_tgd(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        assert isinstance(tgd, TGD)
        assert len(tgd.body) == 1 and len(tgd.head) == 1

    def test_label(self):
        tgd = parse_constraint("a7: S(x) -> E(x,y)")
        assert tgd.label == "a7"

    def test_empty_body_variants(self):
        for text in ("-> S(x), E(x,y)", "true -> S(x), E(x,y)"):
            tgd = parse_constraint(text)
            assert tgd.body == ()
            assert len(tgd.head) == 2

    def test_egd(self):
        egd = parse_constraint("E(x,y), E(x,z) -> y = z")
        assert isinstance(egd, EGD)

    def test_constants(self):
        tgd = parse_constraint("S('paris') -> E('paris', x)")
        assert Constant("paris") in tgd.body[0].constants()

    def test_numeric_constants(self):
        tgd = parse_constraint("S(1) -> E(1, 2)")
        assert tgd.body[0].args[0] == Constant(1)

    def test_multiple_constraints(self):
        sigma = parse_constraints("""
            # a comment
            a1: S(x) -> E(x,y);
            a2: E(x,y) -> E(y,x)
        """)
        assert [c.label for c in sigma] == ["a1", "a2"]

    def test_errors_carry_position(self):
        with pytest.raises(ParseError):
            parse_constraint("S(x -> E(x,y)")
        with pytest.raises(ParseError):
            parse_constraint("S(x)")

    def test_true_as_relation_name_still_works(self):
        tgd = parse_constraint("true(x) -> S(x)")
        assert tgd.body[0].relation == "true"


class TestInstanceParsing:
    def test_identifiers_are_constants(self):
        inst = parse_instance("E(a,b). S(a)")
        assert Constant("a") in inst.domain()

    def test_nulls(self):
        inst = parse_instance("E(a, ?n3). S(?n3)")
        assert Null(3) in inst.nulls()

    def test_named_nulls_are_consistent(self):
        inst = parse_instance("E(?foo, ?foo). E(?foo, ?bar)")
        nulls = inst.nulls()
        assert len(nulls) == 2

    def test_separators(self):
        assert len(parse_instance("E(a,b), E(b,c); E(c,d). E(d,e)")) == 4


class TestQueryParsing:
    def test_query(self):
        q = parse_query("rf(x2) <- rail('c1', x1, y1), fly(x1, x2, y2)")
        assert q.name == "rf"
        assert len(q.body) == 2
        assert q.head == (Variable("x2"),)

    def test_boolean_query_requires_head_atom(self):
        q = parse_query("q(x) <- S(x)")
        assert not q.is_boolean


class TestRendering:
    def test_render_parses_back(self):
        sigma = parse_constraints("""
            a1: S(x) -> E(x, 'hub');
            a2: E(x,y), E(x,z) -> y = z
        """)
        rendered = render_constraints(sigma)
        reparsed = parse_constraints(rendered)
        assert reparsed == sigma
        assert [c.label for c in reparsed] == ["a1", "a2"]

    @given(graph_tgd_sets(max_size=3))
    def test_roundtrip_random_tgds(self, sigma):
        assert parse_constraints(render_constraints(sigma)) == sigma

    def test_render_query_parses_back(self):
        from repro.lang.parser import render_query
        for text in ("q(x, z) <- E(x, y), E(y, z)",
                     "q(x) <- E(x, 'hub'), S(x)",
                     "q(u) <- E(u, ?n7)"):
            query = parse_query(text)
            assert parse_query(render_query(query)) == query

    def test_render_escapes_quotes_and_backslashes(self):
        """Regression: a constant ending in a backslash used to render
        as an escaped closing quote and fail to re-parse -- breaking
        the job wire format for such constants."""
        from repro.cq.query import ConjunctiveQuery
        from repro.lang.atoms import Atom
        from repro.lang.parser import render_query
        from repro.lang.terms import Constant, Variable
        x = Variable("x")
        for value in ("a\\", "a\\'b", "it's", "\\"):
            query = ConjunctiveQuery(
                "q", (x,), (Atom("E", (x, Constant(value))),))
            assert parse_query(render_query(query)) == query
