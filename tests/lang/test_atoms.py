"""Unit tests for atoms and positions."""

import pytest

from repro.lang.atoms import (Atom, atoms_positions, atoms_variables,
                              occurrences, Position)
from repro.lang.errors import SchemaError
from repro.lang.terms import Constant, Null, Variable

x, y = Variable("x"), Variable("y")
a = Constant("a")


class TestPosition:
    def test_one_based(self):
        with pytest.raises(SchemaError):
            Position("E", 0)

    def test_equality_and_order(self):
        assert Position("E", 1) == Position("E", 1)
        assert Position("E", 1) < Position("E", 2)
        assert Position("E", 2) < Position("S", 1)

    def test_str_matches_paper_notation(self):
        assert str(Position("E", 2)) == "E^2"


class TestAtom:
    def test_args_must_be_terms(self):
        with pytest.raises(SchemaError):
            Atom("E", ("raw-string", x))

    def test_groundness(self):
        assert Atom("E", (a, Null(1))).is_ground
        assert not Atom("E", (a, x)).is_ground

    def test_variable_constant_null_extraction(self):
        atom = Atom("T", (x, a, Null(2)))
        assert atom.variables() == {x}
        assert atom.constants() == {a}
        assert atom.nulls() == {Null(2)}

    def test_positions(self):
        atom = Atom("E", (x, y))
        assert atom.positions() == [Position("E", 1), Position("E", 2)]

    def test_positions_of_repeated_term(self):
        atom = Atom("T", (x, x, y))
        assert atom.positions_of(x) == {Position("T", 1), Position("T", 2)}

    def test_substitute(self):
        atom = Atom("E", (x, y))
        grounded = atom.substitute({x: a, y: Null(1)})
        assert grounded == Atom("E", (a, Null(1)))
        # identity on unmapped terms
        assert atom.substitute({x: a}) == Atom("E", (a, y))

    def test_substitute_is_pure(self):
        atom = Atom("E", (x, y))
        atom.substitute({x: a})
        assert atom == Atom("E", (x, y))

    def test_equality_and_hash(self):
        assert Atom("E", (x, y)) == Atom("E", (x, y))
        assert Atom("E", (x, y)) != Atom("E", (y, x))
        assert len({Atom("E", (x, y)), Atom("E", (x, y))}) == 1

    def test_str(self):
        assert str(Atom("E", (x, a))) == "E(x, a)"


class TestHelpers:
    def test_atoms_variables(self):
        atoms = [Atom("E", (x, y)), Atom("S", (x,))]
        assert atoms_variables(atoms) == {x, y}

    def test_atoms_positions(self):
        atoms = [Atom("E", (x, y)), Atom("S", (x,))]
        assert atoms_positions(atoms) == {Position("E", 1), Position("E", 2),
                                          Position("S", 1)}

    def test_occurrences_across_atoms(self):
        atoms = [Atom("E", (x, y)), Atom("S", (x,))]
        assert occurrences(atoms, x) == {Position("E", 1), Position("S", 1)}
        assert occurrences(atoms, Variable("zzz")) == set()
