"""Unit tests for instances and their indexes."""

import pytest

from repro.lang.atoms import Atom, Position
from repro.lang.errors import SchemaError
from repro.lang.instance import Instance
from repro.lang.parser import parse_instance
from repro.lang.terms import Constant, Null, Variable

a, b, c = Constant("a"), Constant("b"), Constant("c")
n1, n2 = Null(1), Null(2)


class TestMutation:
    def test_add_dedup(self):
        inst = Instance()
        assert inst.add(Atom("E", (a, b)))
        assert not inst.add(Atom("E", (a, b)))
        assert len(inst) == 1

    def test_rejects_non_ground(self):
        with pytest.raises(SchemaError):
            Instance([Atom("E", (a, Variable("x")))])

    def test_discard(self):
        inst = Instance([Atom("E", (a, b))])
        assert inst.discard(Atom("E", (a, b)))
        assert not inst.discard(Atom("E", (a, b)))
        assert len(inst) == 0
        assert inst.matching("E", {0: a}) == set()

    def test_substitute_term_rewrites_and_reindexes(self):
        inst = Instance([Atom("E", (a, n1)), Atom("E", (n1, b)),
                         Atom("S", (c,))])
        inst.substitute_term(n1, a)
        assert Atom("E", (a, a)) in inst
        assert Atom("E", (a, b)) in inst
        assert inst.matching("E", {0: n1}) == set()
        assert len(inst) == 3

    def test_substitute_can_merge_facts(self):
        inst = Instance([Atom("E", (a, n1)), Atom("E", (a, b))])
        inst.substitute_term(n1, b)
        assert len(inst) == 1


class TestQueries:
    def test_matching_uses_bindings(self):
        inst = parse_instance("E(a,b). E(a,c). E(b,c)")
        assert len(inst.matching("E", {0: a})) == 2
        assert len(inst.matching("E", {0: a, 1: c})) == 1
        assert inst.matching("E", {0: c}) == set()
        assert len(inst.matching("E", {})) == 3

    def test_domain_constants_nulls(self):
        inst = Instance([Atom("E", (a, n1)), Atom("S", (b,))])
        assert inst.domain() == {a, b, n1}
        assert inst.constants() == {a, b}
        assert inst.nulls() == {n1}

    def test_positions_of(self):
        inst = Instance([Atom("E", (a, n1)), Atom("S", (n1,))])
        assert inst.positions_of(n1) == {Position("E", 2), Position("S", 1)}

    def test_positions_of_after_discard(self):
        inst = Instance([Atom("E", (a, n1))])
        inst.discard(Atom("E", (a, n1)))
        assert inst.positions_of(n1) == set()

    def test_relations(self):
        inst = parse_instance("E(a,b). S(a)")
        assert inst.relations() == {"E", "S"}


class TestConstruction:
    def test_copy_is_independent(self):
        inst = parse_instance("E(a,b)")
        clone = inst.copy()
        clone.add(Atom("S", (a,)))
        assert len(inst) == 1 and len(clone) == 2

    def test_union(self):
        left = parse_instance("E(a,b)")
        right = parse_instance("S(a)")
        merged = left | right
        assert len(merged) == 2 and len(left) == 1

    def test_equality_is_set_equality(self):
        assert parse_instance("E(a,b). S(a)") == parse_instance("S(a). E(a,b)")

    def test_render_deterministic(self):
        inst = parse_instance("S(b). S(a)")
        assert inst.render() == "S(a)\nS(b)"


class TestListeners:
    class Recorder:
        def __init__(self):
            self.added, self.removed = [], []

        def fact_added(self, fact):
            self.added.append(fact)

        def fact_removed(self, fact):
            self.removed.append(fact)

    def test_add_and_discard_notify(self):
        inst = Instance()
        rec = self.Recorder()
        inst.add_listener(rec)
        fact = Atom("E", (a, b))
        inst.add(fact)
        inst.add(fact)  # duplicate: no second event
        inst.discard(fact)
        assert rec.added == [fact] and rec.removed == [fact]

    def test_substitute_term_emits_removal_and_addition(self):
        inst = Instance([Atom("E", (a, n1))])
        rec = self.Recorder()
        inst.add_listener(rec)
        inst.substitute_term(n1, b)
        assert rec.removed == [Atom("E", (a, n1))]
        assert rec.added == [Atom("E", (a, b))]

    def test_merge_produces_no_addition_event(self):
        inst = Instance([Atom("E", (a, n1)), Atom("E", (a, b))])
        rec = self.Recorder()
        inst.add_listener(rec)
        inst.substitute_term(n1, b)  # E(a,n1) collapses onto E(a,b)
        assert rec.removed == [Atom("E", (a, n1))] and rec.added == []

    def test_remove_listener(self):
        inst = Instance()
        rec = self.Recorder()
        inst.add_listener(rec)
        inst.remove_listener(rec)
        inst.add(Atom("S", (a,)))
        assert rec.added == []

    def test_copy_does_not_share_listeners(self):
        inst = Instance()
        rec = self.Recorder()
        inst.add_listener(rec)
        inst.copy().add(Atom("S", (a,)))
        assert rec.added == []


class TestIndexHygiene:
    def test_discard_prunes_empty_buckets(self):
        inst = Instance([Atom("E", (a, b))], backend="set")
        inst.discard(Atom("E", (a, b)))
        assert inst.store._by_term == {}
        assert inst.store._by_relation == {}
        assert inst.store._term_positions == {}

    def test_substitute_leaves_no_stale_term_entries(self):
        inst = Instance([Atom("E", (a, n1)), Atom("E", (n1, b))],
                        backend="set")
        inst.substitute_term(n1, c)
        assert n1 not in inst.store._term_positions
        assert all(key[2] != n1 for key in inst.store._by_term)
        assert inst.positions_of(n1) == set()

    def test_domain_reflects_live_terms_only(self):
        inst = Instance([Atom("E", (a, b)), Atom("S", (c,))])
        inst.discard(Atom("S", (c,)))
        assert inst.domain() == {a, b}


class TestBackendSelection:
    def test_default_backend_is_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert Instance().backend == "set"

    def test_explicit_backend(self):
        inst = Instance([Atom("E", (a, b))], backend="column")
        assert inst.backend == "column"
        assert Atom("E", (a, b)) in inst

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "column")
        assert Instance().backend == "column"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchemaError):
            Instance(backend="btree")

    def test_copy_preserves_backend(self):
        inst = Instance([Atom("E", (a, b))], backend="column")
        clone = inst.copy()
        assert clone.backend == "column" and clone == inst

    def test_equality_across_backends(self):
        left = Instance([Atom("E", (a, b)), Atom("S", (c,))],
                        backend="set")
        right = Instance([Atom("S", (c,)), Atom("E", (a, b))],
                         backend="column")
        assert left == right
        right.discard(Atom("S", (c,)))
        assert left != right
