"""Unit tests for TGDs and EGDs."""

import pytest

from repro.lang.atoms import Atom, Position
from repro.lang.constraints import (all_positions, constraint_set_positions,
                                    constraint_set_schema, EGD, rename_apart,
                                    TGD)
from repro.lang.errors import SchemaError
from repro.lang.parser import parse_constraint
from repro.lang.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestTGD:
    def test_head_required(self):
        with pytest.raises(SchemaError):
            TGD([Atom("S", (x,))], [])

    def test_empty_body_allowed(self):
        tgd = TGD((), [Atom("S", (x,))])
        assert tgd.existential_variables() == {x}

    def test_existential_vs_frontier(self):
        tgd = parse_constraint("S(x), E(x,y) -> E(y,z), E(z,x)")
        assert tgd.existential_variables() == {z}
        assert tgd.frontier_variables() == {x, y}
        assert tgd.universal_variables() == {x, y}

    def test_full_tgd(self):
        assert parse_constraint("E(x,y) -> E(y,x)").is_full
        assert not parse_constraint("E(x,y) -> E(y,z)").is_full

    def test_positions_are_body_positions(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        assert tgd.positions() == {Position("S", 1)}
        assert tgd.head_positions() == {Position("E", 1), Position("E", 2)}

    def test_constants_collected(self):
        tgd = parse_constraint("S(x) -> E(x, 'paris')")
        assert tgd.constants() == {Constant("paris")}

    def test_value_equality(self):
        assert (parse_constraint("S(x) -> E(x,y)")
                == parse_constraint("S(x) -> E(x,y)"))
        assert (parse_constraint("S(x) -> E(x,y)")
                != parse_constraint("S(x) -> E(y,x)"))

    def test_label_not_part_of_identity(self):
        assert (parse_constraint("a: S(x) -> E(x,y)")
                == parse_constraint("b: S(x) -> E(x,y)"))


class TestEGD:
    def test_requires_body(self):
        with pytest.raises(SchemaError):
            EGD([], x, y)

    def test_equality_vars_must_occur(self):
        with pytest.raises(SchemaError):
            EGD([Atom("E", (x, y))], x, z)

    def test_parse_roundtrip(self):
        egd = parse_constraint("E(x,y), E(x,z) -> y = z")
        assert egd.is_egd
        assert egd.lhs == y and egd.rhs == z

    def test_positions(self):
        egd = parse_constraint("E(x,y), S(x) -> x = y")
        assert egd.positions() == {Position("E", 1), Position("E", 2),
                                   Position("S", 1)}


class TestSetHelpers:
    def test_constraint_set_positions_bodies_only(self):
        sigma = [parse_constraint("S(x) -> E(x,y)")]
        assert constraint_set_positions(sigma) == {Position("S", 1)}

    def test_all_positions_includes_heads(self):
        sigma = [parse_constraint("S(x) -> E(x,y)")]
        assert all_positions(sigma) == {Position("S", 1), Position("E", 1),
                                        Position("E", 2)}

    def test_schema_inference(self):
        sigma = [parse_constraint("S(x) -> E(x,y)"),
                 parse_constraint("E(x,y), E(x,z) -> y = z")]
        schema = constraint_set_schema(sigma)
        assert schema.arity("S") == 1 and schema.arity("E") == 2

    def test_schema_conflict_detected(self):
        sigma = [parse_constraint("S(x) -> S(x)"),
                 parse_constraint("S(x,y) -> S(y,x)")]
        with pytest.raises(SchemaError):
            constraint_set_schema(sigma)


class TestRenameApart:
    def test_tgd_renaming_preserves_structure(self):
        tgd = parse_constraint("S(x), E(x,y) -> E(y,z)")
        renamed = rename_apart(tgd, "_1")
        assert renamed != tgd
        assert {v.name for v in renamed.universal_variables()} == {
            "x_1", "y_1"}
        assert {v.name for v in renamed.existential_variables()} == {"z_1"}

    def test_egd_renaming(self):
        egd = parse_constraint("E(x,y), E(x,z) -> y = z")
        renamed = rename_apart(egd, "_a")
        assert renamed.lhs.name == "y_a" and renamed.rhs.name == "z_a"
