"""Isolation for observability tests.

The registry and the active tracer are process-wide globals; every
test in this package starts from a clean, disabled state and restores
whatever was installed before, so obs tests can't leak counters or a
tracer into the rest of the suite (or see each other's data).
"""

import pytest

from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def clean_obs_state():
    previous_enabled = metrics.OBS.enabled
    previous_tracer = trace.set_tracer(None)
    metrics.OBS.enabled = False
    metrics.OBS.clear()
    yield
    metrics.OBS.enabled = previous_enabled
    metrics.OBS.clear()
    trace.set_tracer(previous_tracer)
