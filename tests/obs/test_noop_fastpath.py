"""The no-op fast path: disabled observability records and changes
*nothing*.

This is the mutation-style guarantee behind the <=5% overhead budget:
with ``OBS.enabled`` False and no active tracer, a chase through the
full stack (runner, triggers, plans, kernels, storage) must leave the
registry untouched -- not "roughly empty", *empty* -- and enabling
observability must not perturb any verdict.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.chase import chase, ChaseStatus
from repro.homomorphism.engine import null_renaming_equivalent
from repro.lang.parser import parse_constraints, parse_instance
from repro.obs import metrics, trace
from repro.obs.trace import Tracer

_SRC = str(Path(__file__).resolve().parents[2] / "src")

SIGMA = """
a1: S(x) -> E(x, y)
a2: E(x, y) -> T(y)
"""
INSTANCE = "S(a). S(b). E(a, b)."


def run_chase(max_steps=100):
    return chase(parse_instance(INSTANCE), parse_constraints(SIGMA),
                 max_steps=max_steps)


def comparable(result):
    # Null ids draw from a process-global sequence, so instances are
    # compared up to null renaming, never by raw string.
    return (result.status, len(result.sequence), len(result.instance))


def test_disabled_run_leaves_the_registry_empty():
    assert not metrics.OBS.enabled
    run_chase()
    # Zero writes: no counter, gauge or histogram was ever created.
    assert metrics.OBS.empty()
    assert metrics.OBS.counters == {}
    assert metrics.OBS.gauges == {}


def test_enabling_obs_does_not_change_the_verdict():
    baseline = run_chase()
    metrics.enable()
    records = []
    with trace.tracing(Tracer(records.append)):
        instrumented = run_chase()
    assert comparable(instrumented) == comparable(baseline)
    assert null_renaming_equivalent(instrumented.instance,
                                    baseline.instance)
    # ... and the run actually recorded something.
    assert metrics.OBS.counters["chase.runs"] == 1
    assert metrics.OBS.counters["chase.steps"] \
        == len(instrumented.sequence)
    assert any(r["name"] == "chase" for r in records)


def test_divergent_budget_verdict_unchanged_under_obs():
    sigma = parse_constraints("d: S(x) -> E(x, y), S(y)")
    instance = parse_instance("S(a).")
    baseline = chase(instance, sigma, max_steps=25)
    assert baseline.status is ChaseStatus.EXCEEDED_BUDGET
    metrics.enable()
    with trace.tracing(Tracer(lambda record: None, sample=5)):
        instrumented = chase(instance, sigma, max_steps=25)
    assert instrumented.status is baseline.status
    assert len(instrumented.sequence) == len(baseline.sequence)
    assert metrics.OBS.counters["chase.status.exceeded_budget"] == 1


def _chase_in_subprocess(extra_env):
    """Run a chase in a fresh interpreter; report (enabled, verdict)."""
    code = (
        "from repro.chase import chase\n"
        "from repro.lang.parser import parse_constraints, "
        "parse_instance\n"
        "from repro.obs.metrics import OBS\n"
        f"sigma = parse_constraints('''{SIGMA}''')\n"
        f"result = chase(parse_instance({INSTANCE!r}), sigma)\n"
        "print(OBS.enabled, result.status.value, "
        "len(result.sequence), len(result.instance), OBS.empty())\n")
    env = {**os.environ, "PYTHONPATH": _SRC}
    env.pop("REPRO_OBS", None)
    env.update(extra_env)
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, check=True)
    return proc.stdout.strip()


def test_repro_obs_0_matches_unset_exactly():
    unset = _chase_in_subprocess({})
    zero = _chase_in_subprocess({"REPRO_OBS": "0"})
    assert unset == zero
    assert unset.startswith("False ")       # disabled by default
    assert unset.endswith(" True")          # registry untouched


def test_repro_obs_1_enables_at_import_without_changing_the_verdict():
    baseline = _chase_in_subprocess({})
    enabled = _chase_in_subprocess({"REPRO_OBS": "1"})
    # Same verdict fields; only the enabled/empty flags differ.
    assert enabled.split()[1:4] == baseline.split()[1:4]
    assert enabled.startswith("True ")
    assert enabled.endswith(" False")       # counters were recorded
