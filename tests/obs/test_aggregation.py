"""Cross-process aggregation: worker snapshots merge into the parent.

Workers run with their own registry (cleared per job) and ship a
snapshot inside each :class:`JobResult`; the scheduler folds every
snapshot into the parent's global registry.  After a 2-worker batch
the parent must hold *fleet-wide* totals -- the same numbers an
in-process run would have produced -- and cached replays must never
re-merge.
"""

import pytest

from repro.obs import metrics, trace
from repro.obs.trace import Tracer
from repro.service.cache import ServiceCache
from repro.service.jobs import ChaseJob, JobResult
from repro.service.pool import WorkerPool
from repro.service.scheduler import BatchScheduler

TERMINATING = "a1: S(x) -> E(x, y)"


def make_job(name, instance="S(a). S(b).", **kw):
    payload = {"name": name, "constraints": TERMINATING,
               "instance": instance}
    payload.update(kw)
    return ChaseJob.from_dict(payload)


def batch_jobs():
    return [make_job("t1"),
            make_job("t2", instance="S(a). S(b). S(c)."),
            make_job("t3", instance="S(a).")]


class TestPoolSnapshots:
    def test_worker_results_carry_per_job_snapshots(self):
        metrics.enable()
        pool = WorkerPool(workers=2)
        try:
            results = pool.run(batch_jobs())
        finally:
            pool.close()
        assert all(r.worker.startswith("pid-") for r in results)
        for result in results:
            assert result.metrics is not None
            assert result.metrics["counters"]["chase.runs"] == 1
        # Per-job snapshots, not cumulative: the steps across the
        # batch equal the sum of each job's own count.
        total = sum(r.metrics["counters"]["chase.steps"]
                    for r in results)
        assert total == sum(r.steps for r in results)

    def test_disabled_parent_means_no_snapshots(self):
        pool = WorkerPool(workers=1)
        try:
            results = pool.run([make_job("t1")])
        finally:
            pool.close()
        assert results[0].metrics is None

    def test_inprocess_results_carry_no_snapshot(self):
        metrics.enable()
        pool = WorkerPool(workers=1, force_inprocess=True)
        try:
            results = pool.run([make_job("t1")])
        finally:
            pool.close()
        # In-process counters land in the parent registry directly.
        assert results[0].metrics is None
        assert metrics.OBS.counters["chase.runs"] == 1


class TestSchedulerMerge:
    def test_batch_merges_fleet_wide_totals(self):
        metrics.enable()
        jobs = batch_jobs()
        with BatchScheduler(workers=2) as scheduler:
            results = scheduler.run_batch(jobs)
        assert all(r.ok for r in results)
        counters = metrics.OBS.counters
        assert counters["chase.runs"] == len(jobs)
        assert counters["chase.steps"] == sum(r.steps for r in results)
        assert counters["pool.jobs_dispatched"] == len(jobs)
        hist = metrics.OBS.snapshot()["histograms"]
        assert hist["chase.steps_per_run"]["count"] == len(jobs)

    def test_cached_replay_does_not_remerge(self):
        metrics.enable()
        with BatchScheduler(workers=1) as scheduler:
            scheduler.run_batch([make_job("t1")])
            runs_after_first = metrics.OBS.counters["chase.runs"]
            second = scheduler.run_batch([make_job("t1")])
        assert second[0].cached
        assert second[0].metrics is None
        assert metrics.OBS.counters["chase.runs"] == runs_after_first

    def test_store_result_strips_metrics(self):
        cache = ServiceCache()
        result = JobResult(job="j", fingerprint="fp",
                           status="terminated",
                           metrics={"counters": {"chase.runs": 1}})
        assert cache.store_result(result)
        job = make_job("j")
        stored = cache.results.get("fp")
        assert stored.metrics is None


class TestEventsAndElapsed:
    def run_with_events(self, workers=2, force_inprocess=False):
        events = []
        scheduler = BatchScheduler(workers=workers,
                                   on_event=events.append,
                                   force_inprocess=force_inprocess)
        with scheduler:
            results = scheduler.run_batch(batch_jobs())
        return results, events

    @pytest.mark.parametrize("force_inprocess", [False, True])
    def test_events_carry_timestamp_and_fingerprint(self,
                                                    force_inprocess):
        results, events = self.run_with_events(
            force_inprocess=force_inprocess)
        by_kind = {}
        for event in events:
            by_kind.setdefault(event.kind, []).append(event)
        for kind in ("queued", "started", "finished"):
            assert kind in by_kind
            for event in by_kind[kind]:
                assert event.ts > 0
                assert len(event.fingerprint) == 64      # sha256 hex
        # The rendered form surfaces both (the --events stream).
        rendered = by_kind["finished"][0].render()
        assert " fp=" in rendered
        assert " t=" in rendered

    def test_elapsed_recorded_on_success(self):
        results, events = self.run_with_events()
        for result in results:
            assert result.ok
            assert result.elapsed > 0
            assert result.to_dict()["elapsed"] == result.elapsed
        finished = [e for e in events if e.kind == "finished"]
        # Surfaced (rounded to ms, so fast jobs may read 0.0).
        assert all("elapsed" in e.detail for e in finished)


class TestTraceReplay:
    def test_worker_trace_records_replay_into_parent_sink(self):
        records = []
        with trace.tracing(Tracer(records.append)):
            with BatchScheduler(workers=2) as scheduler:
                results = scheduler.run_batch(batch_jobs())
        assert all(r.worker.startswith("pid-") for r in results)
        names = {r["name"] for r in records}
        assert {"job", "chase", "step"} <= names
        # One trace id per job: the *planned* job's fingerprint (the
        # scheduler pins "auto" to a concrete strategy first).
        traces = {r["trace"] for r in records}
        planner = BatchScheduler(workers=1, force_inprocess=True)
        expected = {planner.plan_job(job)[0].fingerprint()
                    for job in batch_jobs()}
        assert traces == expected
        # Parent links resolve within each trace (child-first order).
        spans = {(r["trace"], r["span"]) for r in records}
        for record in records:
            if record["parent"] is not None:
                assert (record["trace"], record["parent"]) in spans

    def test_jobresult_metrics_roundtrip_json(self):
        snap = {"counters": {"chase.runs": 1}, "gauges": {},
                "histograms": {}}
        result = JobResult(job="j", fingerprint="fp",
                           status="terminated", metrics=snap)
        assert JobResult.from_dict(result.to_dict()).metrics == snap
