"""The tracer: span nesting, sampling, NDJSON output, the checker."""

import importlib.util
import io
import json
from pathlib import Path

import pytest

from repro.obs import trace
from repro.obs.trace import (ndjson_writer, NO_TRACE, Tracer, tracing)

_REPO = Path(__file__).resolve().parents[2]


def load_check_trace():
    spec = importlib.util.spec_from_file_location(
        "check_trace", _REPO / "tools" / "check_trace.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def collecting_tracer(**kwargs):
    records = []
    return Tracer(records.append, **kwargs), records


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestSpans:
    def test_nesting_gives_parentage(self):
        tracer, records = collecting_tracer()
        outer = tracer.start("job")
        inner = tracer.start("chase")
        tracer.finish(inner)
        tracer.finish(outer)
        assert [r["name"] for r in records] == ["chase", "job"]
        chase_rec, job_rec = records
        assert job_rec["parent"] is None
        assert chase_rec["parent"] == job_rec["span"]

    def test_records_are_emitted_child_first(self):
        tracer, records = collecting_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [r["name"] for r in records] == ["b", "a"]

    def test_finish_pops_abandoned_younger_spans(self):
        tracer, records = collecting_tracer()
        outer = tracer.start("outer")
        tracer.start("abandoned")
        tracer.finish(outer)
        # The abandoned span is dropped unemitted; the stack is clean.
        assert [r["name"] for r in records] == ["outer"]
        follow = tracer.start("next")
        assert follow.parent is None

    def test_duration_from_injected_clock(self):
        tracer, records = collecting_tracer(clock=FakeClock())
        span = tracer.start("x")
        tracer.finish(span)
        assert records[0]["ts"] == 101.0
        assert records[0]["dur"] == 1.0

    def test_finish_merges_close_time_attrs(self):
        tracer, records = collecting_tracer()
        span = tracer.start("x", a=1)
        tracer.finish(span, b=2)
        assert records[0]["attrs"] == {"a": 1, "b": 2}

    def test_span_ids_are_unique_and_pid_scoped(self):
        tracer, records = collecting_tracer()
        for _ in range(3):
            tracer.finish(tracer.start("x"))
        ids = [r["span"] for r in records]
        assert len(set(ids)) == 3
        assert all("-" in span_id for span_id in ids)


class TestTraceIdentity:
    def test_default_trace_id(self):
        tracer, records = collecting_tracer()
        tracer.finish(tracer.start("x"))
        assert records[0]["trace"] == NO_TRACE

    def test_trace_context_nests_and_restores(self):
        tracer, records = collecting_tracer()
        with tracer.trace_context("job-1"):
            tracer.finish(tracer.start("a"))
            with tracer.trace_context("job-2"):
                tracer.finish(tracer.start("b"))
            tracer.finish(tracer.start("c"))
        tracer.finish(tracer.start("d"))
        assert [r["trace"] for r in records] \
            == ["job-1", "job-2", "job-1", NO_TRACE]


class TestSampling:
    def test_sample_rate_one_records_everything(self):
        tracer, _ = collecting_tracer()
        assert all(tracer.sampled(i) for i in range(5))

    def test_sample_rate_n_keeps_every_nth(self):
        tracer, _ = collecting_tracer(sample=3)
        kept = [i for i in range(9) if tracer.sampled(i)]
        assert kept == [0, 3, 6]

    def test_sample_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(lambda record: None, sample=0)


class TestActiveTracer:
    def test_set_and_restore(self):
        tracer, _ = collecting_tracer()
        assert trace.active() is None
        previous = trace.set_tracer(tracer)
        assert previous is None
        assert trace.active() is tracer
        trace.set_tracer(previous)
        assert trace.active() is None

    def test_tracing_context_manager(self):
        tracer, _ = collecting_tracer()
        with tracing(tracer):
            assert trace.active() is tracer
        assert trace.active() is None


class TestNdjsonAndChecker:
    def write_sample_trace(self):
        handle = io.StringIO()
        tracer = Tracer(ndjson_writer(handle))
        with tracer.trace_context("fp-1"):
            with tracer.span("job"):
                with tracer.span("chase"):
                    with tracer.span("step", index=0):
                        pass
        return handle.getvalue()

    def test_ndjson_lines_parse(self):
        lines = self.write_sample_trace().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert record["trace"] == "fp-1"
            assert record["dur"] >= 0

    def test_check_trace_accepts_real_output(self, tmp_path):
        check_trace = load_check_trace()
        path = tmp_path / "trace.ndjson"
        path.write_text(self.write_sample_trace())
        assert check_trace.main([str(path)]) == 0

    def test_check_trace_rejects_garbage(self, tmp_path, capsys):
        check_trace = load_check_trace()
        path = tmp_path / "bad.ndjson"
        path.write_text('{"trace": "t", "span": "s"}\nnot json\n')
        assert check_trace.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "missing fields" in err
        assert "not JSON" in err

    def test_check_trace_rejects_duplicate_spans(self, tmp_path):
        check_trace = load_check_trace()
        record = {"trace": "t", "span": "1-1", "parent": None,
                  "name": "x", "ts": 0.0, "dur": 0.0, "attrs": {}}
        path = tmp_path / "dup.ndjson"
        path.write_text(json.dumps(record) + "\n"
                        + json.dumps(record) + "\n")
        assert check_trace.main([str(path)]) == 1

    def test_check_trace_rejects_dangling_parent(self, tmp_path):
        check_trace = load_check_trace()
        record = {"trace": "t", "span": "1-2", "parent": "1-99",
                  "name": "x", "ts": 0.0, "dur": 0.0, "attrs": {}}
        path = tmp_path / "orphan.ndjson"
        path.write_text(json.dumps(record) + "\n")
        assert check_trace.main([str(path)]) == 1

    def test_check_trace_min_spans(self, tmp_path):
        check_trace = load_check_trace()
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        assert check_trace.main([str(path)]) == 1
        assert check_trace.main([str(path), "--min-spans", "0"]) == 0
