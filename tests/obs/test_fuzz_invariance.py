"""Observability must be invisible to the fuzzer's oracles.

The metamorphic oracles cross-validate chase verdicts, hierarchy
membership and pool parity; if enabling metrics or tracing shifted
*any* verdict, the instrumentation would be changing engine behaviour
rather than observing it.  The corpus here runs with all timing
budgets off (``wall_clock=None``, ``oracle_deadline_s=None``) so both
passes are fully deterministic and comparable verdict-by-verdict.
"""

import pytest

from repro.fuzz import run_corpus
from repro.obs import metrics, trace
from repro.obs.trace import Tracer

pytestmark = pytest.mark.fuzz


def corpus_verdicts(tmp_path):
    report = run_corpus(seed=7, n_cases=6, max_steps=150,
                        wall_clock=None, oracle_deadline_s=None,
                        pool_every=0, shrink=False,
                        repro_dir=tmp_path)
    return {
        "failures": [(f.violation.oracle, f.violation.case_label,
                      f.violation.detail) for f in report.failures],
        "skips": list(report.skips),
        "oracle_calls": report.oracle_calls,
        "cases": report.n_cases,
        "ok": report.ok,
    }


def test_metrics_and_tracing_never_change_fuzz_verdicts(tmp_path):
    baseline = corpus_verdicts(tmp_path / "off")
    metrics.enable()
    records = []
    with trace.tracing(Tracer(records.append, sample=2)):
        instrumented = corpus_verdicts(tmp_path / "on")
    assert instrumented == baseline
    # The instrumented pass really observed the corpus.
    assert metrics.OBS.counters["chase.runs"] > 0
    assert any(r["name"] == "chase" for r in records)
