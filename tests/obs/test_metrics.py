"""The metrics registry: recording, snapshots, merging, rendering."""

import json

import pytest

from repro.obs import metrics
from repro.obs.metrics import (_env_enabled, _prom_name, Registry,
                               render_prometheus, render_text)


class TestRegistry:
    def test_counters_accumulate(self):
        reg = Registry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 2)
        assert reg.counters == {"a": 5, "b": 2}

    def test_gauges_last_write_wins(self):
        reg = Registry()
        reg.gauge("depth", 3.0)
        reg.gauge("depth", 1.5)
        assert reg.gauges == {"depth": 1.5}

    def test_histograms_track_count_sum_min_max(self):
        reg = Registry()
        for value in (5.0, 1.0, 3.0):
            reg.observe("lat", value)
        snap = reg.snapshot()
        assert snap["histograms"]["lat"] == {
            "count": 3, "sum": 9.0, "min": 1.0, "max": 5.0}

    def test_empty_and_clear(self):
        reg = Registry()
        assert reg.empty()
        reg.inc("a")
        assert not reg.empty()
        reg.clear()
        assert reg.empty()

    def test_clear_preserves_enabled(self):
        reg = Registry(enabled=True)
        reg.clear()
        assert reg.enabled

    def test_snapshot_is_a_copy(self):
        reg = Registry()
        reg.inc("a")
        snap = reg.snapshot()
        reg.inc("a")
        assert snap["counters"]["a"] == 1

    def test_snapshot_is_json_safe(self):
        reg = Registry()
        reg.inc("a")
        reg.gauge("g", 2.5)
        reg.observe("h", 1.0)
        assert json.loads(json.dumps(reg.snapshot())) == reg.snapshot()


class TestMergeSnapshot:
    def test_merge_is_associative_on_counters_and_histograms(self):
        a, b = Registry(), Registry()
        a.inc("runs", 2)
        a.observe("lat", 1.0)
        b.inc("runs", 3)
        b.inc("other")
        b.observe("lat", 5.0)
        merged = Registry()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        snap = merged.snapshot()
        assert snap["counters"] == {"runs": 5, "other": 1}
        assert snap["histograms"]["lat"] == {
            "count": 2, "sum": 6.0, "min": 1.0, "max": 5.0}

    def test_merge_gauges_take_incoming_value(self):
        reg = Registry()
        reg.gauge("depth", 9.0)
        other = Registry()
        other.gauge("depth", 2.0)
        reg.merge_snapshot(other.snapshot())
        assert reg.gauges["depth"] == 2.0

    def test_merge_accepts_none_and_empty(self):
        reg = Registry()
        reg.merge_snapshot(None)
        reg.merge_snapshot({})
        assert reg.empty()

    def test_merge_into_empty_registry(self):
        src = Registry()
        src.inc("a")
        src.observe("h", 2.0)
        dst = Registry()
        dst.merge_snapshot(src.snapshot())
        assert dst.snapshot() == src.snapshot()


class TestModuleApi:
    def test_enable_disable_roundtrip(self):
        metrics.enable()
        assert metrics.enabled()
        metrics.enable(False)
        assert not metrics.enabled()

    def test_module_snapshot_and_merge_hit_the_global_registry(self):
        metrics.OBS.inc("x")
        metrics.merge({"counters": {"x": 2}})
        assert metrics.snapshot()["counters"]["x"] == 3
        metrics.reset()
        assert metrics.OBS.empty()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no",
                                       "False", " OFF "])
    def test_env_disabled_values(self, value):
        assert not _env_enabled({"REPRO_OBS": value})

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes",
                                       "anything"])
    def test_env_enabled_values(self, value):
        assert _env_enabled({"REPRO_OBS": value})

    def test_env_unset_means_disabled(self):
        assert not _env_enabled({})


class TestRendering:
    def test_render_text_sorted_and_complete(self):
        reg = Registry()
        reg.inc("b.count", 2)
        reg.inc("a.count", 1)
        reg.gauge("g", 1.5)
        reg.observe("h", 4.0)
        lines = render_text(reg.snapshot()).splitlines()
        assert lines[0] == "a.count 1"
        assert lines[1] == "b.count 2"
        assert lines[2] == "g 1.5"
        assert lines[3] == "h count=1 sum=4 min=4 max=4 mean=4"

    def test_render_text_empty_snapshot(self):
        assert render_text(Registry().snapshot()) \
            == "(no metrics recorded)"

    def test_prom_name_sanitizes(self):
        assert _prom_name("chase.steps") == "repro_chase_steps"
        assert _prom_name("a-b c") == "repro_a_b_c"

    def test_render_prometheus_shapes(self):
        reg = Registry()
        reg.inc("chase.runs", 3)
        reg.gauge("pool.size", 2)
        reg.observe("lat", 0.5)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE repro_chase_runs counter\nrepro_chase_runs 3" \
            in text
        assert "# TYPE repro_pool_size gauge\nrepro_pool_size 2" in text
        assert "# TYPE repro_lat summary" in text
        assert "repro_lat_count 1" in text
        assert "repro_lat_sum 0.5" in text
        assert "repro_lat_min 0.5" in text
        assert text.endswith("\n")

    def test_render_prometheus_empty(self):
        assert render_prometheus(Registry().snapshot()) == ""
